"""Metrics registry: counter / gauge / histogram instruments.

A deliberately small, dependency-free re-implementation of the Prometheus
client-library data model, tuned for deterministic simulation telemetry:

* instruments are created once (idempotently) on a :class:`MetricsRegistry`
  and updated on the hot paths via plain attribute calls;
* histograms use *fixed* bucket bounds chosen at creation time, so two runs
  of the same seeded simulation produce byte-identical snapshots;
* :meth:`MetricsRegistry.snapshot` returns samples in a deterministic order
  (sorted by metric name, then label values) regardless of creation or
  update order — the exporters (:mod:`repro.obs.exporters`) rely on this to
  make telemetry diffable across runs and commits.

When observability is disabled the platform components hold the shared
:data:`NULL_INSTRUMENT` / :data:`NULL_REGISTRY` singletons instead, whose
methods are empty — the disabled cost of an instrumented call site is one
attribute lookup and one no-op call (see the overhead guard in
:mod:`repro.experiments.perf`).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds): spans sub-second matcher
#: latencies through multi-minute task turnarounds.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0
)

LabelValues = Tuple[str, ...]


@dataclass(frozen=True)
class Sample:
    """One exported time-series point: ``name{labels} value``."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


class _Instrument:
    """Base class: a named metric with optional label dimensions."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        _validate_metric_name(name)
        for label in labelnames:
            _validate_label_name(label)
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[LabelValues, "_Instrument"] = {}

    # ------------------------------------------------------------- children
    def labels(self, **labelvalues: str) -> "_Instrument":
        """The child series for one label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help)
            self._children[key] = child
        return child

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; call .labels() first"
            )

    def _leaves(self) -> Iterable[Tuple[LabelValues, "_Instrument"]]:
        if self.labelnames:
            for key in sorted(self._children):
                yield key, self._children[key]
        else:
            yield (), self

    def samples(self) -> List[Sample]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count (Prometheus ``counter``)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (inc {amount})")
        self.value += amount

    def samples(self) -> List[Sample]:
        return [
            Sample(self.name, tuple(zip(self.labelnames, key)), leaf.value)
            for key, leaf in self._leaves()
        ]


class Gauge(_Instrument):
    """A value that can go up and down (Prometheus ``gauge``)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        self._require_leaf()
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def samples(self) -> List[Sample]:
        return [
            Sample(self.name, tuple(zip(self.labelnames, key)), leaf.value)
            for key, leaf in self._leaves()
        ]


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (Prometheus ``histogram``).

    Buckets are upper bounds; observations land in the first bucket whose
    bound is >= the value, and every bucket is cumulative in the exported
    samples (``le`` convention), with an implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound is required")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing")
        if any(math.isinf(b) for b in bounds):
            raise ValueError(f"{name}: +Inf bucket is implicit, do not list it")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def labels(self, **labelvalues: str) -> "Histogram":
        child = super().labels(**labelvalues)
        assert isinstance(child, Histogram)
        if child.buckets != self.buckets:
            child.buckets = self.buckets
            child.counts = [0] * (len(self.buckets) + 1)
        return child

    def observe(self, value: float) -> None:
        self._require_leaf()
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def samples(self) -> List[Sample]:
        out: List[Sample] = []
        for key, leaf in self._leaves():
            assert isinstance(leaf, Histogram)
            base = tuple(zip(self.labelnames, key))
            cumulative = 0
            for bound, count in zip(leaf.buckets, leaf.counts):
                cumulative += count
                out.append(
                    Sample(self.name + "_bucket", base + (("le", _fmt_bound(bound)),), cumulative)
                )
            cumulative += leaf.counts[-1]
            out.append(Sample(self.name + "_bucket", base + (("le", "+Inf"),), cumulative))
            out.append(Sample(self.name + "_sum", base, leaf.sum))
            out.append(Sample(self.name + "_count", base, leaf.count))
        return out


class MetricsRegistry:
    """Owns every instrument of one run; snapshot order is deterministic."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._collect_hooks: List[Callable[[], None]] = []

    # ----------------------------------------------------------- factories
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        existing = self._instruments.get(name)
        if existing is not None:
            self._check_reuse(existing, Histogram, labelnames)
            assert isinstance(existing, Histogram)
            if existing.buckets != tuple(float(b) for b in buckets):
                raise ValueError(f"{name}: re-registered with different buckets")
            return existing
        instrument = Histogram(name, help, labelnames, buckets)
        self._instruments[name] = instrument
        return instrument

    def _get_or_create(self, cls, name: str, help: str, labelnames: Sequence[str]):
        existing = self._instruments.get(name)
        if existing is not None:
            self._check_reuse(existing, cls, labelnames)
            return existing
        instrument = cls(name, help, labelnames)
        self._instruments[name] = instrument
        return instrument

    @staticmethod
    def _check_reuse(existing: _Instrument, cls, labelnames: Sequence[str]) -> None:
        if type(existing) is not cls:
            raise ValueError(
                f"{existing.name} already registered as {existing.kind}, "
                f"cannot re-register as {cls.kind}"
            )
        if existing.labelnames != tuple(labelnames):
            raise ValueError(
                f"{existing.name}: label names {tuple(labelnames)} do not match "
                f"existing {existing.labelnames}"
            )

    # ------------------------------------------------------------ querying
    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` before every snapshot (pull-style gauge sync)."""
        self._collect_hooks.append(hook)

    def snapshot(self) -> List[Sample]:
        """All samples in deterministic (name, labels) order."""
        for hook in self._collect_hooks:
            hook()
        out: List[Sample] = []
        for instrument in self.instruments():
            out.extend(instrument.samples())
        return out

    def value(self, name: str, **labelvalues: str) -> float:
        """Convenience accessor for tests: the current scalar of a series."""
        instrument = self._instruments[name]
        leaf = instrument.labels(**labelvalues) if labelvalues else instrument
        leaf._require_leaf()
        return leaf.value  # type: ignore[attr-defined]


def merge_snapshots(snapshots: Iterable[Sequence[Sample]]) -> List[Sample]:
    """Fold per-shard registry snapshots into one aggregate sample list.

    Series are matched by ``(name, labels)`` and their values summed —
    correct for counters and histogram ``_bucket``/``_sum``/``_count``
    series outright, and for gauges under the shard model (each shard owns
    a disjoint slice of the work, so e.g. per-shard ``react_regions``
    gauges add up to the fleet total).

    Output order is first-seen across the input snapshots.  Because every
    shard's registry emits its samples in the deterministic
    :meth:`MetricsRegistry.snapshot` order, feeding shards in canonical
    (shard-id) order reproduces the exact sample order of an equivalent
    single-process run — the property the :mod:`repro.dist` determinism
    contract relies on.
    """
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for snapshot in snapshots:
        for sample in snapshot:
            key = (sample.name, sample.labels)
            merged[key] = merged.get(key, 0.0) + sample.value
    return [Sample(name, labels, value) for (name, labels), value in merged.items()]


# --------------------------------------------------------------- null objects
class NullInstrument:
    """Shared no-op stand-in for every instrument type when obs is off."""

    __slots__ = ()

    def labels(self, **labelvalues: str) -> "NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """Registry facade whose factories all return :data:`NULL_INSTRUMENT`."""

    __slots__ = ()

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        return NULL_INSTRUMENT

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        pass

    def snapshot(self) -> List[Sample]:
        return []


NULL_REGISTRY = NullRegistry()


# ------------------------------------------------------------------- helpers
def _validate_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


def _validate_label_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid label name {name!r}")


def _fmt_bound(bound: float) -> str:
    """Bucket bound rendering: integral bounds drop the trailing ``.0``."""
    return repr(bound) if bound != int(bound) else str(int(bound))
