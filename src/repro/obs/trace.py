"""Sim-time tracing: spans and instant events with structured attributes.

The tracer records :class:`TraceEvent` objects stamped with *simulated*
seconds (the discrete-event engine clock), in the vocabulary of the Chrome
trace-event format so the exporters can emit Perfetto-loadable traces
without translation:

* ``ph="X"`` — a *complete* span with an explicit start and duration
  (matching batches, worker executions);
* ``ph="i"`` — an *instant* event (task submitted, Eq. 2 withdrawal,
  chaos fault activation).

Events live in a bounded ring buffer (``max_events``), so a long run keeps
the most recent window instead of growing without bound — the same fix the
engine's raw :class:`~repro.sim.events.EventRecord` list received
(``Engine(max_records=...)``); this tracer is the preferred, structured
path for new instrumentation.

When tracing is disabled the platform holds :data:`NULL_TRACER`, whose
methods are empty and whose ``span`` returns one shared no-op context
manager — the disabled cost of a traced region is two no-op calls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Default ring-buffer capacity: generous for any quick/CI run, bounded for
#: the paper-scale ones (~35 MB of events at most).
DEFAULT_MAX_EVENTS = 200_000

#: Well-known track ids (Chrome trace ``tid``); worker executions render on
#: per-worker tracks offset by :data:`WORKER_TRACK_BASE`.
PLATFORM_TRACK = 0
SCHEDULER_TRACK = 1
MONITOR_TRACK = 2
CHAOS_TRACK = 3
WORKER_TRACK_BASE = 100

TRACK_NAMES: Dict[int, str] = {
    PLATFORM_TRACK: "platform",
    SCHEDULER_TRACK: "scheduling",
    MONITOR_TRACK: "dynamic-assignment",
    CHAOS_TRACK: "chaos",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace event in sim-time seconds."""

    name: str
    cat: str
    ph: str  # "X" (complete span) | "i" (instant)
    ts: float  # simulated seconds
    dur: float = 0.0  # simulated seconds; only meaningful for ph="X"
    tid: int = PLATFORM_TRACK
    args: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "tid": self.tid,
        }
        if self.ph == "X":
            out["dur"] = self.dur
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        return cls(
            name=payload["name"],
            cat=payload.get("cat", ""),
            ph=payload.get("ph", "i"),
            ts=float(payload["ts"]),
            dur=float(payload.get("dur", 0.0)),
            tid=int(payload.get("tid", PLATFORM_TRACK)),
            args=tuple(sorted(payload.get("args", {}).items())),
        )


class _Span:
    """Context manager recording one ``ph="X"`` event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.complete(
            self._name, self._start, cat=self._cat, tid=self._tid, **self._args
        )


class Tracer:
    """Records sim-time events into a bounded ring buffer."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_events: Optional[int] = DEFAULT_MAX_EVENTS,
    ) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._max_events = max_events
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        #: Events evicted by the ring buffer (oldest-first), for reporting.
        self.dropped = 0
        #: Total events ever recorded (recorded = appended, pre-eviction);
        #: the perf overhead guard uses this as the call count.
        self.recorded = 0

    # ----------------------------------------------------------------- time
    def set_clock(self, clock: Callable[[], float]) -> None:
        """Late-bind the sim clock (the engine is usually built later)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------ recording
    def _append(self, event: TraceEvent) -> None:
        if self._max_events is not None and len(self.events) == self._max_events:
            self.dropped += 1
        self.events.append(event)
        self.recorded += 1

    def instant(self, name: str, cat: str = "", tid: int = PLATFORM_TRACK, **args: Any) -> None:
        """Record an instant event at the current sim time."""
        self._append(
            TraceEvent(
                name=name, cat=cat, ph="i", ts=self._clock(), tid=tid,
                args=tuple(sorted(args.items())),
            )
        )

    def complete(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        cat: str = "",
        tid: int = PLATFORM_TRACK,
        **args: Any,
    ) -> None:
        """Record a span with explicit start (and optional end) sim times.

        Most platform spans — a matching batch, a worker execution — know
        both endpoints only when they finish, so this explicit form is the
        workhorse; ``end=None`` means "now".
        """
        if end is None:
            end = self._clock()
        self._append(
            TraceEvent(
                name=name, cat=cat, ph="X", ts=start, dur=max(0.0, end - start),
                tid=tid, args=tuple(sorted(args.items())),
            )
        )

    def span(self, name: str, cat: str = "", tid: int = PLATFORM_TRACK, **args: Any) -> _Span:
        """Context manager spanning a code region in sim time."""
        return _Span(self, name, cat, tid, args)

    # ------------------------------------------------------------- querying
    def __len__(self) -> int:
        return len(self.events)

    def by_name(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def by_category(self, cat: str) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == cat]


class _NullSpan:
    """Shared reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the disabled-observability fast path."""

    __slots__ = ()
    enabled = False
    events: Tuple[TraceEvent, ...] = ()
    dropped = 0
    recorded = 0

    def set_clock(self, clock: Callable[[], float]) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def instant(self, name: str, cat: str = "", tid: int = PLATFORM_TRACK, **args: Any) -> None:
        pass

    def complete(self, name, start, end=None, cat="", tid=PLATFORM_TRACK, **args) -> None:
        pass

    def span(self, name: str, cat: str = "", tid: int = PLATFORM_TRACK, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def __len__(self) -> int:
        return 0

    def by_name(self, name: str) -> List[TraceEvent]:
        return []

    def by_category(self, cat: str) -> List[TraceEvent]:
        return []


NULL_TRACER = NullTracer()


def worker_track(worker_id: int) -> int:
    """Chrome-trace track id for one worker's execution spans."""
    return WORKER_TRACK_BASE + worker_id
