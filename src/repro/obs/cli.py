"""``python -m repro.experiments obs <verb>`` — offline telemetry tooling.

Two verbs over a recorded JSONL event log (the archival format every
``--trace-out`` run writes next to its Chrome trace):

* ``summarize TRACE.jsonl`` — event counts and span durations per
  (category, name), plus the covered sim-time window;
* ``convert TRACE.jsonl --to chrome|jsonl --out PATH`` — re-emit the log in
  another exporter format (e.g. regenerate a Perfetto-loadable Chrome
  trace from the archival log).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .exporters import (
    read_trace_jsonl,
    summarize_trace,
    write_chrome_trace,
    write_trace_jsonl,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments obs",
        description="Summarize or convert recorded run telemetry.",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    summarize = verbs.add_parser("summarize", help="digest a JSONL trace log")
    summarize.add_argument("trace", metavar="TRACE.jsonl")

    convert = verbs.add_parser("convert", help="re-emit a JSONL trace log")
    convert.add_argument("trace", metavar="TRACE.jsonl")
    convert.add_argument(
        "--to", dest="fmt", choices=("chrome", "jsonl"), default="chrome"
    )
    convert.add_argument("--out", required=True, metavar="PATH")

    args = parser.parse_args(argv)
    try:
        events = read_trace_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        parser.exit(2, f"error: {exc}\n")

    if args.verb == "summarize":
        print(summarize_trace(events))
        return 0

    writer = write_chrome_trace if args.fmt == "chrome" else write_trace_jsonl
    written = writer(events, Path(args.out))
    print(f"# wrote {written}")
    return 0
