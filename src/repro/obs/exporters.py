"""Telemetry exporters: JSONL, Chrome trace JSON, Prometheus text, CSV.

Four write-side formats, all pure functions over the tracer's event buffer
and the registry's snapshot so they can also be driven offline by the
``obs`` CLI subcommand (summarize / convert a recorded JSONL log):

* **JSONL** — one :class:`~repro.obs.trace.TraceEvent` dict per line, in
  sim-time seconds.  The lossless archival format; round-trips through
  :func:`read_trace_jsonl`.
* **Chrome trace JSON** — the ``{"traceEvents": [...]}`` object format
  understood by Perfetto / ``chrome://tracing``; sim-time seconds are
  mapped to microseconds (the format's native unit) and every event
  carries ``ph``/``ts``/``pid``/``tid``/``name``.
* **Prometheus text exposition** — ``# HELP`` / ``# TYPE`` comments plus
  one ``name{labels} value`` line per sample, in the registry's
  deterministic snapshot order.
* **CSV summary** — ``metric,labels,value`` rows for spreadsheet diffing.
"""

from __future__ import annotations

import csv
import io
import json
import math
from collections import Counter as _TallyCounter
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from .registry import MetricsRegistry, Sample
from .trace import TRACK_NAMES, TraceEvent, WORKER_TRACK_BASE

PathLike = Union[str, Path]

#: Chrome trace ``pid`` for every event — one simulated process.
TRACE_PID = 1


# -------------------------------------------------------------------- JSONL
def trace_jsonl_lines(events: Iterable[TraceEvent]) -> List[str]:
    return [json.dumps(event.to_dict(), sort_keys=True) for event in events]


def write_trace_jsonl(events: Iterable[TraceEvent], path: PathLike) -> Path:
    path = Path(path)
    path.write_text("\n".join(trace_jsonl_lines(events)) + "\n", encoding="utf-8")
    return path


def read_trace_jsonl(path: PathLike) -> List[TraceEvent]:
    """Parse a JSONL event log back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: malformed trace line: {exc}") from exc
    return events


# ------------------------------------------------------------- Chrome trace
def chrome_trace_dict(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Events as a Perfetto-loadable Chrome trace-event JSON object.

    Sim-time seconds map to integer microseconds (``ts``/``dur``), the
    format's native unit; thread-name metadata events label the well-known
    tracks and the per-worker execution tracks.
    """
    trace_events: List[Dict[str, object]] = []
    seen_tids: set = set()
    for event in events:
        seen_tids.add(event.tid)
        entry: Dict[str, object] = {
            "name": event.name,
            "cat": event.cat or "default",
            "ph": event.ph,
            "ts": round(event.ts * 1e6),
            "pid": TRACE_PID,
            "tid": event.tid,
        }
        if event.ph == "X":
            entry["dur"] = round(event.dur * 1e6)
        elif event.ph == "i":
            entry["s"] = "t"  # instant scope: thread
        if event.args:
            entry["args"] = dict(event.args)
        trace_events.append(entry)
    for tid in sorted(seen_tids):
        name = TRACK_NAMES.get(tid)
        if name is None and tid >= WORKER_TRACK_BASE:
            name = f"worker-{tid - WORKER_TRACK_BASE}"
        if name is None:
            continue
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_dict(events)) + "\n", encoding="utf-8")
    return path


# --------------------------------------------------------------- Prometheus
def prometheus_text(registry: MetricsRegistry) -> str:
    """Registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    samples_by_name: Dict[str, List[Sample]] = {}
    for sample in registry.snapshot():
        samples_by_name.setdefault(sample.name, []).append(sample)
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        names = (
            [instrument.name + "_bucket", instrument.name + "_sum", instrument.name + "_count"]
            if instrument.kind == "histogram"
            else [instrument.name]
        )
        for name in names:
            for sample in samples_by_name.get(name, []):
                lines.append(_render_sample(sample))
    return "\n".join(lines) + "\n"


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        rendered = ",".join(
            f'{key}="{_escape_label(value)}"' for key, value in sample.labels
        )
        series = f"{sample.name}{{{rendered}}}"
    else:
        series = sample.name
    return f"{series} {_fmt_value(sample.value)}"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{series: value}`` (for tests/CLI)."""
    out: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        out[series] = float(value)
    return out


# ---------------------------------------------------------------------- CSV
def metrics_csv(registry: MetricsRegistry) -> str:
    """Registry snapshot as ``metric,labels,value`` CSV rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["metric", "labels", "value"])
    for sample in registry.snapshot():
        labels = ";".join(f"{k}={v}" for k, v in sample.labels)
        writer.writerow([sample.name, labels, _fmt_value(sample.value)])
    return buffer.getvalue()


def write_metrics_csv(registry: MetricsRegistry, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(metrics_csv(registry), encoding="utf-8")
    return path


# ------------------------------------------------------------- summarization
def summarize_trace(events: Sequence[TraceEvent]) -> str:
    """Human-readable digest of an event log (the ``obs summarize`` output)."""
    if not events:
        return "# empty trace"
    start = min(e.ts for e in events)
    end = max(e.ts + e.dur for e in events)
    tally = _TallyCounter((e.cat or "default", e.name) for e in events)
    spans = [e for e in events if e.ph == "X"]
    lines = [
        "# trace summary",
        f"events:            {len(events)}",
        f"sim-time window:   {start:.3f} .. {end:.3f} s ({end - start:.3f} s)",
        f"spans / instants:  {len(spans)} / {len(events) - len(spans)}",
        "",
        f"{'category':<22}{'event':<28}{'count':>8}{'total dur (s)':>15}",
    ]
    durations: Dict[tuple, float] = {}
    for event in spans:
        durations[(event.cat or "default", event.name)] = (
            durations.get((event.cat or "default", event.name), 0.0) + event.dur
        )
    for (cat, name), count in sorted(tally.items()):
        total = durations.get((cat, name))
        lines.append(
            f"{cat:<22}{name:<28}{count:>8}"
            + (f"{total:>15.3f}" if total is not None else f"{'-':>15}")
        )
    return "\n".join(lines)
