"""Unit tests for the requester feedback model."""

import numpy as np
import pytest

from repro.model.feedback import FeedbackModel, Rating, positive_rate
from repro.model.worker import WorkerBehavior


@pytest.fixture
def model(rng):
    return FeedbackModel(rng)


class TestRule:
    def test_late_task_always_negative(self, model):
        perfect = WorkerBehavior(min_time=1, max_time=5, quality=1.0)
        for _ in range(50):
            outcome = model.judge(perfect, on_time=False)
            assert not outcome.positive
            assert outcome.rating is Rating.BAD

    def test_on_time_perfect_quality_always_positive(self, model):
        perfect = WorkerBehavior(min_time=1, max_time=5, quality=1.0)
        outcomes = [model.judge(perfect, on_time=True) for _ in range(50)]
        assert all(o.positive for o in outcomes)
        assert all(o.rating.is_positive for o in outcomes)

    def test_on_time_zero_quality_never_positive(self, model):
        bad = WorkerBehavior(min_time=1, max_time=5, quality=0.0)
        outcomes = [model.judge(bad, on_time=True) for _ in range(50)]
        assert not any(o.positive for o in outcomes)

    def test_positive_rate_tracks_quality(self, model):
        behavior = WorkerBehavior(min_time=1, max_time=5, quality=0.6)
        outcomes = [model.judge(behavior, on_time=True) for _ in range(3000)]
        assert positive_rate(outcomes) == pytest.approx(0.6, abs=0.05)


class TestRatings:
    def test_positive_outcomes_rated_good_or_better(self, model):
        behavior = WorkerBehavior(min_time=1, max_time=5, quality=1.0)
        ratings = {model.judge(behavior, True).rating for _ in range(100)}
        assert ratings <= {Rating.GOOD, Rating.EXCELLENT}
        assert len(ratings) == 2  # both positive grades occur

    def test_negative_on_time_rated_fair_or_below(self, model):
        behavior = WorkerBehavior(min_time=1, max_time=5, quality=0.0)
        ratings = {model.judge(behavior, True).rating for _ in range(200)}
        assert ratings <= {Rating.BAD, Rating.POOR, Rating.FAIR}

    def test_rating_scale_values(self):
        """§II: Bad=1 .. Excellent=5."""
        assert Rating.BAD == 1
        assert Rating.EXCELLENT == 5
        assert Rating.GOOD.is_positive
        assert not Rating.FAIR.is_positive


class TestPositiveRate:
    def test_empty_returns_none(self):
        assert positive_rate([]) is None
