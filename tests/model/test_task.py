"""Unit tests for the Task model."""

import pytest

from repro.model.task import Task, TaskCategory, TaskPhase


class TestConstruction:
    def test_defaults(self, make_task):
        task = make_task()
        assert task.phase is TaskPhase.UNASSIGNED
        assert task.assignments == 0
        assert task.assigned_worker is None

    def test_unique_ids(self, make_task):
        a, b = make_task(), make_task()
        assert a.task_id != b.task_id

    @pytest.mark.parametrize("deadline", [0.0, -5.0])
    def test_invalid_deadline(self, deadline):
        with pytest.raises(ValueError, match="deadline"):
            Task(latitude=0, longitude=0, deadline=deadline)

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_invalid_coordinates(self, lat, lon):
        with pytest.raises(ValueError):
            Task(latitude=lat, longitude=lon, deadline=60)

    def test_negative_reward_rejected(self):
        with pytest.raises(ValueError, match="reward"):
            Task(latitude=0, longitude=0, deadline=60, reward=-0.01)


class TestTiming:
    def test_absolute_deadline(self, make_task):
        task = make_task(deadline=90, submitted_at=10)
        assert task.absolute_deadline == 100

    def test_remaining_time(self, make_task):
        task = make_task(deadline=90, submitted_at=10)
        assert task.remaining_time(now=40) == 60
        assert task.remaining_time(now=110) == -10

    def test_is_expired(self, make_task):
        task = make_task(deadline=90, submitted_at=0)
        assert not task.is_expired(89.99)
        assert task.is_expired(90.01)

    def test_is_expired_boundary_matches_eq2(self, make_task):
        """Pinned convention: TTD == now is expired, matching the Eq. 2
        sweep (``ttd <= elapsed`` closes the window) and Eq. 3
        (``ttd <= 0`` gives zero completion probability)."""
        task = make_task(deadline=90, submitted_at=0)
        assert task.is_expired(90.0)

    def test_completing_exactly_at_deadline_is_on_time(self, make_task):
        task = make_task(deadline=90, submitted_at=0)
        task.mark_assigned(3, now=10.0)
        task.mark_completed(now=90.0)
        assert task.met_deadline

    def test_elapsed_requires_assignment(self, make_task):
        task = make_task()
        with pytest.raises(ValueError, match="not assigned"):
            task.elapsed_since_assignment(5.0)

    def test_elapsed_since_assignment(self, make_task):
        task = make_task()
        task.mark_assigned(worker_id=7, now=5.0)
        assert task.elapsed_since_assignment(12.0) == 7.0


class TestLifecycle:
    def test_assign_complete_flow(self, make_task):
        task = make_task(deadline=90)
        task.mark_assigned(3, now=10.0)
        assert task.phase is TaskPhase.ASSIGNED
        assert task.assignments == 1
        task.mark_completed(now=20.0)
        assert task.phase is TaskPhase.COMPLETED
        assert task.met_deadline

    def test_reassignment_increments_counter(self, make_task):
        task = make_task()
        task.mark_assigned(1, now=0.0)
        task.mark_unassigned()
        assert task.phase is TaskPhase.UNASSIGNED
        assert task.assigned_worker is None
        task.mark_assigned(2, now=10.0)
        assert task.assignments == 2

    def test_cannot_assign_completed(self, make_task):
        task = make_task()
        task.mark_assigned(1, now=0.0)
        task.mark_completed(now=5.0)
        with pytest.raises(ValueError, match="finished"):
            task.mark_assigned(2, now=6.0)

    def test_cannot_complete_unassigned(self, make_task):
        with pytest.raises(ValueError, match="not assigned"):
            make_task().mark_completed(now=1.0)

    def test_cannot_unassign_unassigned(self, make_task):
        with pytest.raises(ValueError, match="not assigned"):
            make_task().mark_unassigned()


class TestOutcomes:
    def test_late_completion_misses_deadline(self, make_task):
        task = make_task(deadline=30)
        task.mark_assigned(1, now=0.0)
        task.mark_completed(now=45.0)
        assert not task.met_deadline

    def test_boundary_completion_meets_deadline(self, make_task):
        task = make_task(deadline=30)
        task.mark_assigned(1, now=0.0)
        task.mark_completed(now=30.0)
        assert task.met_deadline

    def test_total_and_worker_time(self, make_task):
        task = make_task(deadline=90, submitted_at=5.0)
        task.mark_assigned(1, now=20.0)
        task.mark_completed(now=32.0)
        assert task.total_time == 27.0
        assert task.worker_time == 12.0

    def test_times_none_before_completion(self, make_task):
        task = make_task()
        assert task.total_time is None
        assert task.worker_time is None

    def test_worker_time_reflects_final_assignment_only(self, make_task):
        """Fig. 7 counts only the final worker's execution time."""
        task = make_task(deadline=200, submitted_at=0.0)
        task.mark_assigned(1, now=0.0)
        task.mark_unassigned()
        task.mark_assigned(2, now=50.0)
        task.mark_completed(now=58.0)
        assert task.worker_time == 8.0
        assert task.total_time == 58.0


class TestCategories:
    def test_all_categories_distinct(self):
        values = [c.value for c in TaskCategory]
        assert len(values) == len(set(values))
