"""Unit tests for worker behaviour and profiles."""

import numpy as np
import pytest

from repro.model.task import TaskCategory
from repro.model.worker import CategoryStats, WorkerBehavior, WorkerProfile


class TestWorkerBehaviorValidation:
    def test_min_exceeding_max_rejected(self):
        with pytest.raises(ValueError):
            WorkerBehavior(min_time=10, max_time=5, quality=0.5)

    def test_zero_min_rejected(self):
        with pytest.raises(ValueError):
            WorkerBehavior(min_time=0, max_time=5, quality=0.5)

    @pytest.mark.parametrize("q", [-0.1, 1.1])
    def test_quality_bounds(self, q):
        with pytest.raises(ValueError, match="quality"):
            WorkerBehavior(min_time=1, max_time=5, quality=q)

    def test_delay_cap_below_max_rejected(self):
        with pytest.raises(ValueError, match="delay_cap"):
            WorkerBehavior(min_time=1, max_time=20, quality=0.5, delay_cap=10)

    def test_delay_floor_outside_range_rejected(self):
        with pytest.raises(ValueError, match="delay_floor"):
            WorkerBehavior(
                min_time=1, max_time=20, quality=0.5, delay_cap=130, delay_floor=10
            )


class TestSampling:
    def test_nominal_draws_within_window(self, rng):
        behavior = WorkerBehavior(
            min_time=2, max_time=8, quality=0.5, delay_probability=0.0
        )
        draws = [behavior.sample_outcome(rng) for _ in range(200)]
        assert all(not d.abandoned for d in draws)
        assert all(2 <= d.duration <= 8 for d in draws)

    def test_always_delay_never_nominal(self, rng):
        behavior = WorkerBehavior(
            min_time=2,
            max_time=8,
            quality=0.5,
            delay_probability=1.0,
            abandon_probability=0.0,
            delay_cap=50,
        )
        draws = [behavior.sample_outcome(rng) for _ in range(200)]
        assert all(8 <= d.duration <= 50 for d in draws)

    def test_abandonment_fraction(self, rng):
        behavior = WorkerBehavior(
            min_time=2, max_time=8, quality=0.5,
            delay_probability=1.0, abandon_probability=1.0,
        )
        draws = [behavior.sample_outcome(rng) for _ in range(50)]
        assert all(d.abandoned for d in draws)
        assert all(d.duration == behavior.delay_cap for d in draws)

    def test_delay_floor_respected(self, rng):
        behavior = WorkerBehavior(
            min_time=2, max_time=8, quality=0.5,
            delay_probability=1.0, abandon_probability=0.0,
            delay_floor=100.0, delay_cap=130.0,
        )
        draws = [behavior.sample_outcome(rng) for _ in range(100)]
        assert all(100 <= d.duration <= 130 for d in draws)

    def test_mixed_fractions_approximate_probabilities(self, rng):
        behavior = WorkerBehavior(min_time=2, max_time=8, quality=0.5)
        draws = [behavior.sample_outcome(rng) for _ in range(4000)]
        abandoned = sum(d.abandoned for d in draws) / len(draws)
        delayed = sum(d.duration > 8 for d in draws) / len(draws)
        assert abandoned == pytest.approx(0.25, abs=0.05)
        assert delayed == pytest.approx(0.5, abs=0.05)

    def test_feedback_requires_on_time(self, rng):
        behavior = WorkerBehavior(min_time=1, max_time=5, quality=1.0)
        assert behavior.sample_feedback(rng, on_time=True)
        assert not behavior.sample_feedback(rng, on_time=False)

    def test_feedback_rate_matches_quality(self, rng):
        behavior = WorkerBehavior(min_time=1, max_time=5, quality=0.3)
        rate = np.mean([behavior.sample_feedback(rng, True) for _ in range(4000)])
        assert rate == pytest.approx(0.3, abs=0.05)


class TestCategoryStats:
    def test_accuracy_empty_is_zero(self):
        assert CategoryStats().accuracy == 0.0

    def test_accuracy_ratio(self):
        stats = CategoryStats()
        for positive in (True, True, False, True):
            stats.record(positive)
        assert stats.accuracy == 0.75


class TestWorkerProfile:
    def test_record_completion_updates_history(self):
        profile = WorkerProfile(worker_id=1)
        profile.record_completion(5.0, TaskCategory.GENERIC, True)
        profile.record_completion(7.0, TaskCategory.GENERIC, False)
        assert profile.completed_tasks == 2
        assert profile.accuracy(TaskCategory.GENERIC) == 0.5

    def test_accuracy_is_per_category(self):
        profile = WorkerProfile(worker_id=1)
        profile.record_completion(5.0, TaskCategory.TRAFFIC_MONITORING, True)
        profile.record_completion(5.0, TaskCategory.PRICE_CHECK, False)
        assert profile.accuracy(TaskCategory.TRAFFIC_MONITORING) == 1.0
        assert profile.accuracy(TaskCategory.PRICE_CHECK) == 0.0
        assert profile.accuracy(TaskCategory.GENERIC) == 0.0
        assert profile.overall_accuracy() == 0.5

    def test_invalid_execution_time_rejected(self):
        with pytest.raises(ValueError):
            WorkerProfile(worker_id=1).record_completion(0.0, TaskCategory.GENERIC, True)

    def test_assign_release_cycle(self):
        profile = WorkerProfile(worker_id=1)
        profile.assign(10)
        assert not profile.available
        assert profile.current_task == 10
        assert profile.assignment_count == 1
        profile.release()
        assert profile.available
        assert profile.current_task is None

    def test_double_assign_rejected(self):
        profile = WorkerProfile(worker_id=1)
        profile.assign(10)
        with pytest.raises(ValueError, match="not available"):
            profile.assign(11)

    def test_offline_worker_cannot_be_assigned(self):
        profile = WorkerProfile(worker_id=1, online=False)
        with pytest.raises(ValueError):
            profile.assign(10)

    def test_detach_keeps_worker_busy(self):
        """Withdrawal without release: the human is still dawdling."""
        profile = WorkerProfile(worker_id=1)
        profile.assign(10)
        profile.detach_task()
        assert profile.current_task is None
        assert not profile.available

    def test_censored_observation_recorded(self):
        profile = WorkerProfile(worker_id=1)
        profile.record_censored(42.0)
        assert profile.completed_tasks == 1
        assert profile.censored_observations == 1
        assert profile.execution_times == [42.0]

    def test_censored_zero_elapsed_ignored(self):
        profile = WorkerProfile(worker_id=1)
        profile.record_censored(0.0)
        assert profile.completed_tasks == 0

    def test_assignment_count_tracks_all_assignments(self):
        profile = WorkerProfile(worker_id=1)
        for task in (10, 11, 12):
            profile.assign(task)
            profile.release()
        assert profile.assignment_count == 3
        assert profile.completed_tasks == 0  # assignments are not completions


class TestAccuracyMirror:
    """The pushed ``accuracy_by_category`` mirror stays in lock-step with
    ``category_stats`` (the source of truth) — the per-batch Eq. 1 weight
    matrix reads the mirror directly, so divergence would silently change
    matching decisions."""

    def test_mirror_tracks_every_completion(self):
        profile = WorkerProfile(worker_id=1)
        outcomes = (True, False, True, True, False)
        for positive in outcomes:
            profile.record_completion(5.0, TaskCategory.PRICE_CHECK, positive)
            stats = profile.category_stats[TaskCategory.PRICE_CHECK]
            assert (
                profile.accuracy_by_category[TaskCategory.PRICE_CHECK]
                == stats.accuracy
            )
        assert profile.accuracy(TaskCategory.PRICE_CHECK) == 0.6

    def test_constructor_injected_stats_seed_the_mirror(self):
        stats = CategoryStats(positive=3, finished=4)
        profile = WorkerProfile(
            worker_id=1, category_stats={TaskCategory.GENERIC: stats}
        )
        assert profile.accuracy_by_category[TaskCategory.GENERIC] == 0.75
        assert profile.accuracy(TaskCategory.GENERIC) == 0.75

    def test_unknown_category_reads_zero(self):
        profile = WorkerProfile(worker_id=1)
        profile.record_completion(5.0, TaskCategory.GENERIC, True)
        assert profile.accuracy(TaskCategory.ENTERTAINMENT) == 0.0

    def test_weight_matrix_agrees_with_category_stats(self):
        from repro.core.weights import AccuracyWeight
        from repro.model.task import Task

        profile = WorkerProfile(worker_id=1)
        for positive in (True, True, False):
            profile.record_completion(5.0, TaskCategory.IMAGE_LABELING, positive)
        task = Task(
            latitude=0.0,
            longitude=0.0,
            deadline=60.0,
            category=TaskCategory.IMAGE_LABELING,
        )
        matrix = AccuracyWeight().matrix([profile], [task])
        truth = profile.category_stats[TaskCategory.IMAGE_LABELING].accuracy
        assert matrix[0, 0] == truth == 2.0 / 3.0
