"""Unit tests for the spatial decomposition."""

import numpy as np
import pytest

from repro.model.region import (
    Region,
    RegionGrid,
    build_tiers,
    haversine_km,
    haversine_km_matrix,
)


class TestRegion:
    def test_contains_closed_top_edge(self):
        # A standalone region covers its full bbox: the documented closed
        # global top edge means points exactly on lat_max/lon_max belong to
        # it (mirroring RegionGrid.locate's clamping).
        region = Region(0, 1, 0, 1)
        assert region.contains(0.0, 0.0)
        assert region.contains(0.999, 0.999)
        assert region.contains(1.0, 0.5)
        assert region.contains(0.5, 1.0)
        assert region.contains(1.0, 1.0)
        assert not region.contains(1.0001, 0.5)

    def test_contains_open_edges_when_flagged(self):
        region = Region(0, 1, 0, 1, closed_lat_max=False, closed_lon_max=False)
        assert not region.contains(1.0, 0.5)
        assert not region.contains(0.5, 1.0)
        assert region.contains(0.0, 0.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(1, 1, 0, 1)

    def test_center_and_area(self):
        region = Region(0, 2, 0, 4)
        assert region.center == (1.0, 2.0)
        assert region.area == 8.0

    def test_split_halves_cover_parent(self):
        region = Region(0, 4, 0, 2)  # taller than wide -> lat split
        a, b = region.split()
        assert a.lat_max == b.lat_min == 2.0
        assert a.area + b.area == region.area
        # every parent point lands in exactly one child
        for lat, lon in [(0.5, 0.5), (3.5, 1.5), (2.0, 1.0)]:
            assert region.contains(lat, lon)
            assert a.contains(lat, lon) != b.contains(lat, lon)

    def test_split_along_longer_axis(self):
        wide = Region(0, 1, 0, 10)
        a, b = wide.split()
        assert a.lon_max == b.lon_min == 5.0

    def test_split_midline_owned_by_upper_half_only(self):
        a, b = Region(0, 4, 0, 2).split()  # lat split at 2.0
        assert not a.closed_lat_max and b.closed_lat_max
        assert not a.contains(2.0, 1.0) and b.contains(2.0, 1.0)

    def test_split_propagates_outer_flags(self):
        # An interior grid cell (open max edges) must not close anything
        # through a split; a top-edge cell must keep its closure on the
        # child that inherits the outer boundary.
        interior = Region(0, 4, 0, 2, closed_lat_max=False, closed_lon_max=False)
        low, high = interior.split()
        assert not low.closed_lat_max and not high.closed_lat_max
        assert not low.closed_lon_max and not high.closed_lon_max
        edge = Region(0, 4, 0, 2)  # standalone: both max edges closed
        low, high = edge.split()
        assert high.closed_lat_max and low.closed_lon_max and high.closed_lon_max
        assert not low.closed_lat_max  # midline stays single-owner

    def test_splittable_until_fp_collapse(self):
        assert Region(0, 4, 0, 2).splittable
        # One-ulp spans: the midpoint rounds onto an endpoint, so splitting
        # would produce a degenerate child.  splittable must say so instead.
        ulp = np.nextafter(1.0, 2.0)
        sliver = Region(1.0, ulp, 1.0, ulp)
        assert not sliver.splittable
        with pytest.raises(ValueError):
            sliver.split()


class TestRegionGrid:
    def test_grid_tiles_without_overlap(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=5)
        assert len(grid) == 10
        total = sum(r.area for r in grid)
        assert total == pytest.approx(100.0)

    def test_locate_interior_points(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        for lat, lon in [(1, 1), (1, 9), (9, 1), (9, 9)]:
            region = grid.locate(lat, lon)
            assert region.contains(lat, lon)

    def test_locate_clamps_top_edge(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        region = grid.locate(10.0, 10.0)
        assert region is grid.regions[-1]

    def test_locate_outside_rejected(self):
        grid = RegionGrid(0, 10, 0, 10)
        with pytest.raises(ValueError, match="outside"):
            grid.locate(11, 5)

    def test_split_region_replaces_entry(self):
        grid = RegionGrid(0, 10, 0, 10)
        original = grid.regions[0]
        a, b = grid.split_region(original.region_id)
        assert len(grid) == 2
        assert a in grid.regions and b in grid.regions
        with pytest.raises(KeyError):
            grid.split_region(original.region_id)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            RegionGrid(0, 10, 0, 10, rows=0)

    def test_only_outer_cells_keep_closed_edges(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        by_flags = {
            (r.closed_lat_max, r.closed_lon_max) for r in grid.regions
        }
        assert by_flags == {(False, False), (False, True), (True, False), (True, True)}

    def test_every_point_owned_by_exactly_one_cell(self):
        # Includes interior boundaries and the global top/right edge — the
        # regression for the boundary bug (top-edge points used to be owned
        # by no region at all under the strict-< contains).
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        points = [(1, 1), (5.0, 3.0), (3.0, 5.0), (5.0, 5.0),
                  (10.0, 3.0), (3.0, 10.0), (10.0, 10.0), (0.0, 10.0)]
        for lat, lon in points:
            owners = [r for r in grid.regions if r.contains(lat, lon)]
            assert len(owners) == 1, (lat, lon, owners)
            assert grid.locate(lat, lon) is owners[0]


class TestTiers:
    def test_tier_sizes_double_per_level(self):
        tiers = build_tiers(0, 8, 0, 8, levels=3)
        assert [len(t.regions) for t in tiers] == [1, 4, 16]
        assert [t.level for t in tiers] == [0, 1, 2]

    def test_lowest_tier_is_whole_area(self):
        tiers = build_tiers(0, 8, 0, 8, levels=2)
        whole = tiers[0].regions[0]
        assert whole.contains(0.1, 0.1) and whole.contains(7.9, 7.9)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            build_tiers(0, 1, 0, 1, levels=0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(38.0, 23.7, 38.0, 23.7) == 0.0

    def test_athens_to_thessaloniki(self):
        # ~300 km great-circle distance
        d = haversine_km(37.98, 23.73, 40.64, 22.94)
        assert 290 < d < 310

    def test_symmetry(self):
        assert haversine_km(10, 20, 30, 40) == pytest.approx(
            haversine_km(30, 40, 10, 20)
        )

    def test_matrix_bit_equal_to_scalar_metro_scale(self):
        # At the distances the spatial weights actually see (a metro-area
        # bounding box), libm and numpy transcendentals agree to the bit, so
        # swapping the scalar loop for the broadcast path cannot perturb a
        # seeded experiment.
        rng = np.random.default_rng(7)
        lat1 = rng.uniform(38.0, 38.2, size=13)
        lon1 = rng.uniform(23.6, 23.8, size=13)
        lat2 = rng.uniform(38.0, 38.2, size=11)
        lon2 = rng.uniform(23.6, 23.8, size=11)
        matrix = haversine_km_matrix(
            lat1[:, None], lon1[:, None], lat2[None, :], lon2[None, :]
        )
        assert matrix.shape == (13, 11)
        for i in range(13):
            for j in range(11):
                scalar = haversine_km(lat1[i], lon1[i], lat2[j], lon2[j])
                assert matrix[i, j] == scalar  # bit-identical, not approx

    def test_matrix_matches_scalar_globally(self):
        # Antipodal-range inputs may differ by an ulp (libm asin vs numpy
        # arcsin); the matrix must still agree to full double precision.
        rng = np.random.default_rng(11)
        lat1 = rng.uniform(-90, 90, size=9)
        lon1 = rng.uniform(-180, 180, size=9)
        lat2 = rng.uniform(-90, 90, size=9)
        lon2 = rng.uniform(-180, 180, size=9)
        matrix = haversine_km_matrix(
            lat1[:, None], lon1[:, None], lat2[None, :], lon2[None, :]
        )
        for i in range(9):
            for j in range(9):
                scalar = haversine_km(lat1[i], lon1[i], lat2[j], lon2[j])
                assert matrix[i, j] == pytest.approx(scalar, rel=1e-12)
