"""Unit tests for the spatial decomposition."""

import pytest

from repro.model.region import Region, RegionGrid, build_tiers, haversine_km


class TestRegion:
    def test_contains_half_open(self):
        region = Region(0, 1, 0, 1)
        assert region.contains(0.0, 0.0)
        assert region.contains(0.999, 0.999)
        assert not region.contains(1.0, 0.5)
        assert not region.contains(0.5, 1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(1, 1, 0, 1)

    def test_center_and_area(self):
        region = Region(0, 2, 0, 4)
        assert region.center == (1.0, 2.0)
        assert region.area == 8.0

    def test_split_halves_cover_parent(self):
        region = Region(0, 4, 0, 2)  # taller than wide -> lat split
        a, b = region.split()
        assert a.lat_max == b.lat_min == 2.0
        assert a.area + b.area == region.area
        # every parent point lands in exactly one child
        for lat, lon in [(0.5, 0.5), (3.5, 1.5), (2.0, 1.0)]:
            assert region.contains(lat, lon)
            assert a.contains(lat, lon) != b.contains(lat, lon)

    def test_split_along_longer_axis(self):
        wide = Region(0, 1, 0, 10)
        a, b = wide.split()
        assert a.lon_max == b.lon_min == 5.0


class TestRegionGrid:
    def test_grid_tiles_without_overlap(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=5)
        assert len(grid) == 10
        total = sum(r.area for r in grid)
        assert total == pytest.approx(100.0)

    def test_locate_interior_points(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        for lat, lon in [(1, 1), (1, 9), (9, 1), (9, 9)]:
            region = grid.locate(lat, lon)
            assert region.contains(lat, lon)

    def test_locate_clamps_top_edge(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        region = grid.locate(10.0, 10.0)
        assert region is grid.regions[-1]

    def test_locate_outside_rejected(self):
        grid = RegionGrid(0, 10, 0, 10)
        with pytest.raises(ValueError, match="outside"):
            grid.locate(11, 5)

    def test_split_region_replaces_entry(self):
        grid = RegionGrid(0, 10, 0, 10)
        original = grid.regions[0]
        a, b = grid.split_region(original.region_id)
        assert len(grid) == 2
        assert a in grid.regions and b in grid.regions
        with pytest.raises(KeyError):
            grid.split_region(original.region_id)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            RegionGrid(0, 10, 0, 10, rows=0)


class TestTiers:
    def test_tier_sizes_double_per_level(self):
        tiers = build_tiers(0, 8, 0, 8, levels=3)
        assert [len(t.regions) for t in tiers] == [1, 4, 16]
        assert [t.level for t in tiers] == [0, 1, 2]

    def test_lowest_tier_is_whole_area(self):
        tiers = build_tiers(0, 8, 0, 8, levels=2)
        whole = tiers[0].regions[0]
        assert whole.contains(0.1, 0.1) and whole.contains(7.9, 7.9)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            build_tiers(0, 1, 0, 1, levels=0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(38.0, 23.7, 38.0, 23.7) == 0.0

    def test_athens_to_thessaloniki(self):
        # ~300 km great-circle distance
        d = haversine_km(37.98, 23.73, 40.64, 22.94)
        assert 290 < d < 310

    def test_symmetry(self):
        assert haversine_km(10, 20, 30, 40) == pytest.approx(
            haversine_km(30, 40, 10, 20)
        )
