"""Unit tests for the requester helper."""

from repro.model.requester import Requester
from repro.model.task import TaskCategory


class TestSubmission:
    def test_defaults_applied(self):
        requester = Requester(name="r", default_reward=0.08, default_deadline=75.0)
        task = requester.submit(1.0, 2.0, "Is road A congested?")
        assert task.reward == 0.08
        assert task.deadline == 75.0
        assert task.description == "Is road A congested?"
        assert requester.submitted == [task]

    def test_overrides_beat_defaults(self):
        requester = Requester()
        task = requester.submit(
            0, 0, "x", deadline=120.0, reward=0.02,
            category=TaskCategory.PRICE_CHECK, now=33.0,
        )
        assert task.deadline == 120.0
        assert task.reward == 0.02
        assert task.category is TaskCategory.PRICE_CHECK
        assert task.submitted_at == 33.0

    def test_unique_requester_ids(self):
        assert Requester().requester_id != Requester().requester_id


class TestViews:
    def test_completed_and_on_time_views(self):
        requester = Requester(default_deadline=60.0)
        on_time = requester.submit(0, 0, "a", now=0.0)
        late = requester.submit(0, 0, "b", now=0.0)
        pending = requester.submit(0, 0, "c", now=0.0)

        on_time.mark_assigned(1, now=0.0)
        on_time.mark_completed(now=30.0)
        late.mark_assigned(2, now=0.0)
        late.mark_completed(now=90.0)

        assert requester.completed == [on_time, late]
        assert requester.on_time == [on_time]
        assert pending not in requester.completed
