"""Property-based tests on the power-law model (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stats.powerlaw import FitMethod, PowerLawFit, fit_power_law

positive_samples = st.lists(
    st.floats(min_value=0.5, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

alphas = st.floats(min_value=1.05, max_value=20.0)
k_mins = st.floats(min_value=0.1, max_value=100.0)


class TestFitTotality:
    @given(samples=positive_samples)
    @settings(max_examples=80, deadline=None)
    def test_fit_always_produces_valid_model(self, samples):
        fit = fit_power_law(samples)
        assert fit.alpha > 1.0
        assert fit.k_min == min(samples)
        assert fit.n_samples >= 1

    @given(samples=positive_samples, method=st.sampled_from(list(FitMethod)))
    @settings(max_examples=60, deadline=None)
    def test_both_methods_total(self, samples, method):
        fit = fit_power_law(samples, method=method)
        assert np.isfinite(fit.alpha)


class TestCcdfLaws:
    @given(alpha=alphas, k_min=k_mins, k=st.floats(0.01, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_ccdf_in_unit_interval(self, alpha, k_min, k):
        fit = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=5)
        value = float(fit.ccdf(k))
        assert 0.0 <= value <= 1.0

    @given(alpha=alphas, k_min=k_mins, a=st.floats(0.01, 1e5), b=st.floats(0.01, 1e5))
    @settings(max_examples=100, deadline=None)
    def test_ccdf_monotone_decreasing(self, alpha, k_min, a, b):
        assume(a < b)
        fit = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=5)
        assert float(fit.ccdf(a)) >= float(fit.ccdf(b)) - 1e-12

    @given(alpha=alphas, k_min=k_mins, k=st.floats(0.01, 1e5))
    @settings(max_examples=60, deadline=None)
    def test_cdf_ccdf_sum_to_one(self, alpha, k_min, k):
        fit = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=5)
        assert float(fit.cdf(k)) + float(fit.ccdf(k)) == pytest.approx(1.0)

    @given(alpha=alphas, k_min=k_mins, q=st.floats(0.0, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_quantile_round_trip(self, alpha, k_min, q):
        fit = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=5)
        k = float(fit.quantile(q))
        assert float(fit.cdf(k)) == pytest.approx(q, abs=1e-6)


class TestEquation2Laws:
    """Eq. 2 = P(t) - P(TTD) must behave like a probability of an interval."""

    @given(
        alpha=alphas,
        k_min=k_mins,
        t=st.floats(0.0, 500.0),
        extra=st.floats(0.001, 500.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_interval_probability_nonnegative(self, alpha, k_min, t, extra):
        fit = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=5)
        ttd = t + extra
        window = float(fit.ccdf(t)) - float(fit.ccdf(ttd))
        assert window >= -1e-12
        assert window <= 1.0 + 1e-12

    @given(alpha=alphas, k_min=k_mins, ttd=st.floats(1.0, 500.0))
    @settings(max_examples=60, deadline=None)
    def test_window_shrinks_with_elapsed(self, alpha, k_min, ttd):
        fit = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=5)
        windows = [
            float(fit.ccdf(t)) - float(fit.ccdf(ttd))
            for t in np.linspace(0.0, ttd, 8)
        ]
        for a, b in zip(windows, windows[1:]):
            assert b <= a + 1e-12


class TestSamplingRoundTrip:
    @given(alpha=st.floats(1.5, 6.0), k_min=st.floats(0.5, 20.0))
    @settings(max_examples=15, deadline=None)
    def test_fit_recovers_parameters(self, alpha, k_min):
        rng = np.random.default_rng(12345)
        true = PowerLawFit(alpha=alpha, k_min=k_min, n_samples=1)
        samples = true.sample(rng, size=8000)
        fit = fit_power_law(samples, method=FitMethod.CONTINUOUS)
        assert fit.alpha == pytest.approx(alpha, rel=0.15)
