"""Property tests on the deadline estimator across all duration families."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.deadline import DeadlineEstimator
from repro.model.task import TaskCategory
from repro.model.worker import WorkerProfile
from repro.stats.duration_models import make_family

histories = st.lists(
    st.floats(min_value=0.5, max_value=200.0, allow_nan=False),
    min_size=3,
    max_size=25,
)
family_names = st.sampled_from(["power-law", "empirical", "lognormal"])


def _profile(times):
    profile = WorkerProfile(worker_id=0)
    for t in times:
        profile.record_completion(t, TaskCategory.GENERIC, True)
    return profile


class TestEquation3Laws:
    @given(times=histories, family=family_names, ttd=st.floats(0.1, 500.0))
    @settings(max_examples=80, deadline=None)
    def test_probability_in_unit_interval(self, times, family, ttd):
        estimator = DeadlineEstimator(min_history=3, family=make_family(family))
        est = estimator.completion_probability(_profile(times), ttd)
        assert 0.0 <= est.probability <= 1.0
        assert est.trained

    @given(
        times=histories,
        family=family_names,
        a=st.floats(0.1, 400.0),
        b=st.floats(0.1, 400.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_longer_deadline_never_hurts(self, times, family, a, b):
        """Eq. 3 must be monotone in the deadline for every family."""
        assume(a < b)
        estimator = DeadlineEstimator(min_history=3, family=make_family(family))
        profile = _profile(times)
        short = estimator.completion_probability(profile, a).probability
        long = estimator.completion_probability(profile, b).probability
        assert long >= short - 1e-9


class TestEquation2Laws:
    @given(
        times=histories,
        family=family_names,
        ttd=st.floats(5.0, 400.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_monotone_in_elapsed(self, times, family, ttd):
        """Eq. 2 can only shrink as time passes, for every family."""
        estimator = DeadlineEstimator(min_history=3, family=make_family(family))
        profile = _profile(times)
        probs = [
            estimator.window_probability(profile, t, ttd).probability
            for t in np.linspace(0.0, ttd * 0.99, 6)
        ]
        for earlier, later in zip(probs, probs[1:]):
            assert later <= earlier + 1e-9

    @given(times=histories, family=family_names, threshold=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_reassignment_fires_before_deadline_if_ever(self, times, family, threshold):
        """If should_reassign is ever true it happens strictly before the
        deadline; at/after the deadline it is always false (paper §V-C)."""
        estimator = DeadlineEstimator(min_history=3, family=make_family(family))
        profile = _profile(times)
        ttd = 100.0
        assert not estimator.should_reassign(profile, ttd, ttd, threshold)
        assert not estimator.should_reassign(profile, ttd + 10, ttd, threshold)

    @given(times=histories, family=family_names)
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotonicity(self, times, family):
        """A higher threshold can only make reassignment more eager."""
        estimator = DeadlineEstimator(min_history=3, family=make_family(family))
        profile = _profile(times)
        elapsed, ttd = 50.0, 90.0
        fired = [
            estimator.should_reassign(profile, elapsed, ttd, thr)
            for thr in (0.0, 0.1, 0.5, 1.0)
        ]
        # once it fires at some threshold it fires at every higher one
        assert fired == sorted(fired)
