"""Property-based tests on the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.events import EventKind

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=60,
)


class TestOrdering:
    @given(delays=delays)
    @settings(max_examples=80, deadline=None)
    def test_dispatch_times_monotone(self, delays):
        engine = Engine()
        observed = []
        for d in delays:
            engine.schedule(d, EventKind.CALLBACK, lambda e: observed.append(engine.now))
        engine.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(delays=delays)
    @settings(max_examples=50, deadline=None)
    def test_clock_never_goes_backwards_with_reentrant_scheduling(self, delays):
        engine = Engine()
        observed = []

        def chain(event):
            observed.append(engine.now)
            if event.payload:
                # schedule a follow-up at a pseudo-random future offset
                engine.schedule(
                    event.payload % 7.0, EventKind.CALLBACK, chain, payload=None
                )

        for d in delays:
            engine.schedule(d, EventKind.CALLBACK, chain, payload=d)
        engine.run()
        assert observed == sorted(observed)

    @given(
        delays=delays,
        horizon=st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_pause_resume_equals_single_run(self, delays, horizon):
        def collect(engine):
            out = []
            for d in delays:
                engine.schedule(d, EventKind.CALLBACK, lambda e: out.append(engine.now))
            return out

        continuous = Engine()
        a = collect(continuous)
        continuous.run()

        paused = Engine()
        b = collect(paused)
        paused.run(until=horizon)
        paused.run()

        assert a == b

    @given(same_time=st.floats(min_value=0.0, max_value=100.0), n=st.integers(2, 20))
    @settings(max_examples=50, deadline=None)
    def test_fifo_among_equal_priority_events(self, same_time, n):
        engine = Engine()
        order = []
        for i in range(n):
            engine.schedule(
                same_time, EventKind.CALLBACK, lambda e: order.append(e.payload), payload=i
            )
        engine.run()
        assert order == list(range(n))
