"""Cross-validation of the Hungarian matcher against NetworkX.

``networkx.algorithms.matching.max_weight_matching`` is an independent
implementation (Galil's blossom algorithm on general graphs); on bipartite
inputs its optimum must coincide with our scipy-backed Hungarian matcher.
Property test over random sparse graphs, plus targeted known cases.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.hungarian import HungarianMatcher
from repro.graph.bipartite import BipartiteGraph


def _networkx_optimum(graph: BipartiteGraph) -> float:
    g = nx.Graph()
    for w, t, weight in zip(
        graph.edge_workers, graph.edge_tasks, graph.edge_weights
    ):
        g.add_edge(("w", int(w)), ("t", int(t)), weight=float(weight))
    matching = nx.algorithms.matching.max_weight_matching(g, maxcardinality=False)
    return sum(g[u][v]["weight"] for u, v in matching)


@st.composite
def graphs(draw):
    n_workers = draw(st.integers(1, 8))
    n_tasks = draw(st.integers(1, 8))
    cells = [(w, t) for w in range(n_workers) for t in range(n_tasks)]
    chosen = draw(
        st.lists(st.sampled_from(cells), min_size=1, max_size=len(cells), unique=True)
    )
    weights = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return BipartiteGraph.from_edges(
        n_workers, n_tasks, [(w, t, x) for (w, t), x in zip(chosen, weights)]
    )


class TestCrossCheck:
    @given(graph=graphs())
    @settings(max_examples=60, deadline=None)
    def test_hungarian_matches_networkx(self, graph):
        ours = HungarianMatcher().match(graph).total_weight
        theirs = _networkx_optimum(graph)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_dense_random_graphs(self, rng):
        for _ in range(5):
            graph = BipartiteGraph.full(rng.random((10, 10)))
            ours = HungarianMatcher().match(graph).total_weight
            theirs = _networkx_optimum(graph)
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_weight_vs_cardinality_case(self):
        """The case that caught the negative-phantom bug: one heavy edge
        blocking two light ones."""
        graph = BipartiteGraph.from_edges(
            2, 2, [(0, 0, 1.0), (0, 1, 0.45), (1, 0, 0.45)]
        )
        assert HungarianMatcher().match(graph).total_weight == pytest.approx(
            _networkx_optimum(graph)
        )
