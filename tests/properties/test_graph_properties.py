"""Property-based tests on graph construction and the Eq. 3 builder."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline import DeadlineEstimator
from repro.core.weights import ConstantWeight
from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import AssignmentGraphBuilder
from repro.model.task import Task, TaskCategory
from repro.model.worker import WorkerProfile


@st.composite
def dense_weights(draw):
    rows = draw(st.integers(1, 8))
    cols = draw(st.integers(1, 8))
    values = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.array(values).reshape(rows, cols)


class TestBipartiteGraphLaws:
    @given(weights=dense_weights())
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, weights):
        graph = BipartiteGraph.full(weights)
        assert np.allclose(graph.to_dense(), weights)
        assert graph.n_edges == weights.size

    @given(weights=dense_weights(), threshold=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_prune_below_keeps_only_heavy(self, weights, threshold):
        graph = BipartiteGraph.full(weights)
        pruned = graph.prune_below(threshold)
        assert pruned.n_edges == int((weights >= threshold).sum())
        if pruned.n_edges:
            assert pruned.edge_weights.min() >= threshold

    @given(weights=dense_weights())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, weights):
        graph = BipartiteGraph.full(weights)
        assert graph.worker_degrees().sum() == graph.n_edges
        assert graph.task_degrees().sum() == graph.n_edges


@st.composite
def worker_histories(draw):
    n = draw(st.integers(1, 6))
    histories = []
    for _ in range(n):
        count = draw(st.integers(0, 6))
        times = draw(
            st.lists(st.floats(1.0, 200.0), min_size=count, max_size=count)
        )
        histories.append(times)
    return histories


class TestBuilderLaws:
    @given(
        histories=worker_histories(),
        n_tasks=st.integers(1, 5),
        deadline=st.floats(10.0, 200.0),
        bound=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_builder_output_always_consistent(self, histories, n_tasks, deadline, bound):
        workers = []
        for i, times in enumerate(histories):
            profile = WorkerProfile(worker_id=i)
            for t in times:
                profile.record_completion(t, TaskCategory.GENERIC, True)
            profile.assignment_count = len(times)
            workers.append(profile)
        tasks = [
            Task(latitude=0, longitude=0, deadline=deadline, submitted_at=0.0)
            for _ in range(n_tasks)
        ]
        builder = AssignmentGraphBuilder(
            weight_function=ConstantWeight(0.5),
            estimator=DeadlineEstimator(min_history=3),
            edge_probability_bound=bound,
        )
        graph, report = builder.build(workers, tasks, now=0.0)
        # structural consistency
        assert graph.n_workers == len(workers)
        assert graph.n_tasks == n_tasks
        assert report.kept_edges == graph.n_edges
        assert report.kept_edges + report.pruned_by_probability >= 0
        assert graph.n_edges <= len(workers) * n_tasks
        # cold-start workers always fully connected (deadline > 0 here)
        cold = [w for w in workers if w.assignment_count < 3]
        if cold:
            degrees = graph.worker_degrees()
            for w in cold:
                assert degrees[w.worker_id] == n_tasks

    @given(
        histories=worker_histories(),
        bound_low=st.floats(0.0, 0.5),
        bound_high=st.floats(0.5, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_higher_bound_prunes_more(self, histories, bound_low, bound_high):
        workers = []
        for i, times in enumerate(histories):
            profile = WorkerProfile(worker_id=i)
            for t in times:
                profile.record_completion(t, TaskCategory.GENERIC, True)
            profile.assignment_count = max(3, len(times))  # no cold-start boost
            workers.append(profile)
        tasks = [Task(latitude=0, longitude=0, deadline=60.0, submitted_at=0.0)]

        def edges_at(bound):
            builder = AssignmentGraphBuilder(
                weight_function=ConstantWeight(0.5),
                estimator=DeadlineEstimator(min_history=3),
                edge_probability_bound=bound,
            )
            graph, _ = builder.build(workers, tasks, now=0.0)
            return graph.n_edges

        assert edges_at(bound_high) <= edges_at(bound_low)
