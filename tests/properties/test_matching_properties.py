"""Property-based tests on matching invariants (hypothesis).

Core invariants of the paper's §III-C program, checked over randomly
generated graphs for every matcher:

* every produced matching is valid (no two edges share a vertex);
* the objective never exceeds the Hungarian optimum;
* REACT dominates the empty matching (weights are non-negative);
* pruning edges can never increase the optimal objective.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.greedy import GreedyMatcher, SortedGreedyMatcher
from repro.core.matching.hungarian import HungarianMatcher
from repro.core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.core.matching.uniform import UniformMatcher
from repro.graph.bipartite import BipartiteGraph


@st.composite
def bipartite_graphs(draw):
    """Random sparse bipartite graphs with weights in [0, 1]."""
    n_workers = draw(st.integers(min_value=1, max_value=12))
    n_tasks = draw(st.integers(min_value=1, max_value=12))
    cells = [(w, t) for w in range(n_workers) for t in range(n_tasks)]
    chosen = draw(
        st.lists(st.sampled_from(cells), min_size=0, max_size=len(cells), unique=True)
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    edges = [(w, t, x) for (w, t), x in zip(chosen, weights)]
    return BipartiteGraph.from_edges(n_workers, n_tasks, edges)


MATCHERS = [
    ReactMatcher(ReactParameters(cycles=400)),
    MetropolisMatcher(MetropolisParameters(cycles=400)),
    GreedyMatcher(),
    SortedGreedyMatcher(),
    UniformMatcher(),
    HungarianMatcher(),
]


@pytest.mark.parametrize("matcher", MATCHERS, ids=lambda m: m.name)
class TestUniversalInvariants:
    @given(graph=bipartite_graphs(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matching_always_valid(self, matcher, graph, seed):
        result = matcher.match(graph, np.random.default_rng(seed))
        result.validate()

    @given(graph=bipartite_graphs(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_never_beats_optimal(self, matcher, graph, seed):
        result = matcher.match(graph, np.random.default_rng(seed))
        optimal = HungarianMatcher().match(graph)
        assert result.total_weight <= optimal.total_weight + 1e-9

    @given(graph=bipartite_graphs(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matching_within_cardinality_bound(self, matcher, graph, seed):
        result = matcher.match(graph, np.random.default_rng(seed))
        assert result.size <= graph.max_matching_upper_bound


class TestStructuralProperties:
    @given(graph=bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_greedy_matches_every_matchable_task_on_positive_graphs(self, graph):
        """Each task with an edge to some free worker in task order gets
        matched or its candidate workers were taken by earlier tasks."""
        result = GreedyMatcher().match(graph)
        matched_tasks = set(result.tasks.tolist())
        matched_workers = set(result.workers.tolist())
        for task in range(graph.n_tasks):
            if task in matched_tasks:
                continue
            incident = graph.edges_of_task(task)
            # every neighbouring worker must be taken (otherwise greedy
            # would have matched this task)
            neighbours = set(graph.edge_workers[incident].tolist())
            assert neighbours <= matched_workers

    @given(graph=bipartite_graphs(), threshold=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_pruning_never_improves_optimum(self, graph, threshold):
        optimal = HungarianMatcher().match(graph).total_weight
        pruned = graph.prune_below(threshold)
        pruned_optimal = HungarianMatcher().match(pruned).total_weight
        assert pruned_optimal <= optimal + 1e-9

    @given(graph=bipartite_graphs(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_react_weight_consistent_with_selection(self, graph, seed):
        result = ReactMatcher(ReactParameters(cycles=300)).match(
            graph, np.random.default_rng(seed)
        )
        recomputed = float(graph.edge_weights[result.edge_indices].sum())
        assert result.total_weight == pytest.approx(recomputed)
