"""Unit tests for the synthetic CrowdFlower case study."""

import numpy as np
import pytest

from repro.workload.crowdflower import (
    MAX_RESPONSE_SECONDS,
    MEDIAN_RESPONSE_SECONDS,
    MIN_RESPONSE_SECONDS,
    analyze_case_study,
    generate_case_study,
)


class TestGeneration:
    def test_trace_size(self, rng):
        trace = generate_case_study(rng, n_responses=250, n_workers=40)
        assert len(trace) == 250
        assert all(0 <= r.worker_id < 40 for r in trace)

    def test_response_time_bounds(self, rng):
        trace = generate_case_study(rng, n_responses=2000)
        times = [r.response_seconds for r in trace]
        assert min(times) >= MIN_RESPONSE_SECONDS
        assert max(times) <= MAX_RESPONSE_SECONDS

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_case_study(rng, n_responses=0)

    def test_trust_consistent_per_worker(self, rng):
        trace = generate_case_study(rng, n_responses=500, n_workers=20)
        by_worker = {}
        for r in trace:
            by_worker.setdefault(r.worker_id, set()).add(r.trust)
        assert all(len(trusts) == 1 for trusts in by_worker.values())


class TestPaperAnchors:
    """The synthetic trace must reproduce the §V-C published statistics."""

    def test_median_response_near_20s(self, rng):
        report = analyze_case_study(generate_case_study(rng, n_responses=8000))
        assert report.median_response_seconds == pytest.approx(
            MEDIAN_RESPONSE_SECONDS, rel=0.15
        )

    def test_half_of_responses_under_20s(self, rng):
        report = analyze_case_study(generate_case_study(rng, n_responses=8000))
        assert report.fraction_under_20s == pytest.approx(0.5, abs=0.05)

    def test_seventy_percent_trust_above_half(self, rng):
        report = analyze_case_study(
            generate_case_study(rng, n_responses=5000, n_workers=800)
        )
        assert report.fraction_trust_above_half == pytest.approx(0.7, abs=0.05)

    def test_stragglers_reach_hours(self, rng):
        report = analyze_case_study(generate_case_study(rng, n_responses=8000))
        assert report.max_response_seconds > 3600.0  # hours-long tail

    def test_recommended_deadline_range(self, rng):
        report = analyze_case_study(generate_case_study(rng, n_responses=100))
        assert report.recommended_deadline_range == (60.0, 120.0)

    def test_answer_correctness_tracks_trust(self, rng):
        trace = generate_case_study(rng, n_responses=20_000, n_workers=50)
        high = [r.answer_correct for r in trace if r.trust > 0.8]
        low = [r.answer_correct for r in trace if r.trust < 0.2]
        assert np.mean(high) > 0.7
        assert np.mean(low) < 0.3


class TestAnalysis:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_case_study([])
