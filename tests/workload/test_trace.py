"""Tests for task-trace capture, persistence and replay."""

import numpy as np
import pytest

from repro.model.task import TaskCategory
from repro.workload.arrivals import deterministic_gaps, poisson_gaps
from repro.workload.generators import TrafficMonitoringGenerator
from repro.workload.trace import TaskTrace, TraceRecord, capture_trace, replay_trace

from ..platform.helpers import build_server


def _record(arrival=0.0, deadline=90.0, **kw):
    defaults = dict(
        arrival=arrival, latitude=1.0, longitude=2.0, deadline=deadline,
        reward=0.05, category=TaskCategory.TRAFFIC_MONITORING,
        description="Is road A congested?",
    )
    defaults.update(kw)
    return TraceRecord(**defaults)


class TestTraceStructure:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="ordered"):
            TaskTrace(records=[_record(arrival=5.0), _record(arrival=1.0)])

    def test_record_validation(self):
        with pytest.raises(ValueError):
            _record(arrival=-1.0)
        with pytest.raises(ValueError):
            _record(deadline=0.0)

    def test_duration_and_rate(self):
        trace = TaskTrace(records=[_record(arrival=float(i)) for i in range(11)])
        assert trace.duration == 10.0
        assert trace.arrival_rate() == pytest.approx(1.1)

    def test_empty_trace(self):
        trace = TaskTrace()
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.arrival_rate() == 0.0


class TestCapture:
    def test_capture_from_generator(self, rng):
        generator = TrafficMonitoringGenerator(rng)
        trace = capture_trace(generator, deterministic_gaps(rate=2.0), count=10)
        assert len(trace) == 10
        arrivals = [r.arrival for r in trace]
        assert arrivals == pytest.approx([0.5 * (i + 1) for i in range(10)])
        assert all(60 <= r.deadline <= 120 for r in trace)

    def test_capture_poisson_is_deterministic_per_seed(self):
        def make(seed):
            gen = TrafficMonitoringGenerator(np.random.default_rng(seed))
            return capture_trace(
                gen, poisson_gaps(1.0, np.random.default_rng(seed)), count=20
            )

        a, b = make(5), make(5)
        assert [r.arrival for r in a] == [r.arrival for r in b]

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            capture_trace(
                TrafficMonitoringGenerator(rng), deterministic_gaps(1.0), count=0
            )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, rng):
        generator = TrafficMonitoringGenerator(rng)
        trace = capture_trace(generator, deterministic_gaps(1.0), count=15)
        path = trace.save(tmp_path / "trace.csv")
        loaded = TaskTrace.load(path)
        assert len(loaded) == 15
        for original, reloaded in zip(trace, loaded):
            assert reloaded.arrival == pytest.approx(original.arrival, abs=1e-5)
            assert reloaded.deadline == pytest.approx(original.deadline, abs=1e-5)
            assert reloaded.category is original.category
            assert reloaded.description == original.description

    def test_load_rejects_missing_columns(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("arrival,latitude\n0.0,1.0\n")
        with pytest.raises(ValueError, match="missing columns"):
            TaskTrace.load(bad)


class TestReplay:
    def test_replay_preserves_timing(self):
        engine, server = build_server(n_workers=5)
        trace = TaskTrace(records=[_record(arrival=t) for t in (1.0, 4.0, 9.0)])
        submitted = []
        replay_trace(engine, trace, lambda task: submitted.append((engine.now, task)))
        engine.run(until=20.0)
        assert [t for t, _ in submitted] == [1.0, 4.0, 9.0]
        assert all(task.submitted_at == t for t, task in submitted)

    def test_replay_with_start_offset(self):
        engine, server = build_server(n_workers=5)
        trace = TaskTrace(records=[_record(arrival=1.0)])
        times = []
        replay_trace(engine, trace, lambda task: times.append(engine.now), start=10.0)
        engine.run(until=20.0)
        assert times == [11.0]

    def test_replay_into_server_completes_tasks(self):
        engine, server = build_server(n_workers=5)
        trace = TaskTrace(records=[_record(arrival=float(i)) for i in range(5)])
        replay_trace(engine, trace, server.submit_task)
        engine.run(until=60.0)
        assert server.metrics.received == 5
        assert server.metrics.completed == 5

    def test_same_trace_identical_across_policies(self):
        """The property the comparison harnesses rely on."""
        from repro.platform.policies import traditional_policy

        trace = TaskTrace(records=[_record(arrival=float(i), deadline=80.0)
                                   for i in range(10)])
        received = []
        for policy in (None, traditional_policy()):
            kwargs = {} if policy is None else {"policy": policy}
            engine, server = build_server(n_workers=5, **kwargs)
            replay_trace(engine, trace, server.submit_task)
            engine.run(until=100.0)
            received.append(server.metrics.received)
        assert received == [10, 10]
