"""Unit tests for task generators."""

import numpy as np
import pytest

from repro.model.region import Region
from repro.model.task import TaskCategory
from repro.workload.generators import (
    LocationSurveyGenerator,
    PoiSuggestionGenerator,
    PriceCheckGenerator,
    TaskGenerator,
    TaskGeneratorConfig,
    TrafficMonitoringGenerator,
    make_generator,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = TaskGeneratorConfig()
        assert config.deadline_low == 60.0
        assert config.deadline_high == 120.0
        assert config.reward_high <= 0.10  # §II: 90% of tasks pay < $0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskGeneratorConfig(deadline_low=0.0)
        with pytest.raises(ValueError):
            TaskGeneratorConfig(reward_low=0.5, reward_high=0.1)


class TestGeneration:
    def test_deadline_and_reward_ranges(self, rng):
        gen = TaskGenerator(rng)
        for _ in range(100):
            task = gen.make()
            assert 60.0 <= task.deadline <= 120.0
            assert 0.01 <= task.reward <= 0.10

    def test_submitted_at_stamped(self, rng):
        task = TaskGenerator(rng).make(submitted_at=42.0)
        assert task.submitted_at == 42.0

    def test_region_placement(self, rng):
        region = Region(10, 20, 30, 40)
        gen = TrafficMonitoringGenerator(rng, region=region)
        for _ in range(50):
            task = gen.make()
            assert region.contains(task.latitude, task.longitude)

    def test_stream_count(self, rng):
        assert len(list(TaskGenerator(rng).stream(7))) == 7

    def test_unique_ids_in_stream(self, rng):
        tasks = list(TaskGenerator(rng).stream(20))
        assert len({t.task_id for t in tasks}) == 20


class TestFlavours:
    @pytest.mark.parametrize(
        "cls,category",
        [
            (TrafficMonitoringGenerator, TaskCategory.TRAFFIC_MONITORING),
            (LocationSurveyGenerator, TaskCategory.LOCATION_SURVEY),
            (PriceCheckGenerator, TaskCategory.PRICE_CHECK),
            (PoiSuggestionGenerator, TaskCategory.POI_SUGGESTION),
        ],
    )
    def test_category_and_description(self, rng, cls, category):
        task = cls(rng).make()
        assert task.category is category
        assert len(task.description) > 10

    def test_traffic_description_mentions_congestion(self, rng):
        task = TrafficMonitoringGenerator(rng).make()
        assert "congested" in task.description


class TestFactory:
    @pytest.mark.parametrize("name", ["generic", "traffic", "survey", "price-check", "poi"])
    def test_known_names(self, rng, name):
        assert make_generator(name, rng).make() is not None

    def test_unknown_name(self, rng):
        with pytest.raises(KeyError):
            make_generator("bogus", rng)
