"""Unit tests for the worker-population generator."""

import numpy as np
import pytest

from repro.model.region import Region
from repro.workload.population import (
    PopulationConfig,
    generate_population,
    population_statistics,
    sample_behavior,
    sample_quality,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = PopulationConfig()
        assert config.size == 750
        assert config.time_floor == 1.0
        assert config.time_ceil == 20.0
        assert config.delay_probability == 0.5
        assert config.delay_cap == 130.0
        assert config.high_quality_fraction == 0.7
        assert config.quality_split == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(size=-1)
        with pytest.raises(ValueError):
            PopulationConfig(time_floor=0.0)
        with pytest.raises(ValueError):
            PopulationConfig(high_quality_fraction=2.0)


class TestMarginals:
    def test_quality_split_fraction(self, rng):
        config = PopulationConfig()
        qualities = [sample_quality(rng, config) for _ in range(5000)]
        above = np.mean([q > 0.5 for q in qualities])
        assert above == pytest.approx(0.7, abs=0.03)

    def test_behavior_windows_in_bounds(self, rng):
        config = PopulationConfig()
        for _ in range(200):
            b = sample_behavior(rng, config)
            assert 1.0 <= b.min_time <= b.max_time <= 20.0
            assert b.delay_cap == 130.0

    def test_population_statistics(self, rng):
        pop = generate_population(rng, PopulationConfig(size=2000))
        stats = population_statistics(pop)
        assert stats["size"] == 2000
        assert stats["fraction_quality_above_half"] == pytest.approx(0.7, abs=0.05)
        lo, hi = stats["min_time_range"]
        assert lo >= 1.0 and hi <= 20.0

    def test_empty_population_statistics(self):
        assert population_statistics([]) == {"size": 0}


class TestGeneration:
    def test_ids_sequential_with_offset(self, rng):
        pop = generate_population(rng, PopulationConfig(size=3), id_offset=100)
        assert [p.worker_id for p, _ in pop] == [100, 101, 102]

    def test_placement_inside_region(self, rng):
        region = Region(10, 20, 30, 40)
        pop = generate_population(rng, PopulationConfig(size=50), region=region)
        for profile, _ in pop:
            assert region.contains(profile.latitude, profile.longitude)

    def test_default_location_origin(self, rng):
        pop = generate_population(rng, PopulationConfig(size=2))
        assert all(p.latitude == 0.0 and p.longitude == 0.0 for p, _ in pop)

    def test_deterministic_under_seed(self):
        a = generate_population(np.random.default_rng(5), PopulationConfig(size=10))
        b = generate_population(np.random.default_rng(5), PopulationConfig(size=10))
        assert [x[1] for x in a] == [x[1] for x in b]  # behaviours are frozen dataclasses
