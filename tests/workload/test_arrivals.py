"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import burst_gaps, deterministic_gaps, poisson_gaps


class TestDeterministic:
    def test_gap_is_inverse_rate(self):
        gaps = list(deterministic_gaps(rate=4.0, count=5))
        assert [g for g, _ in gaps] == [0.25] * 5
        assert [i for _, i in gaps] == list(range(5))

    def test_infinite_stream(self):
        stream = deterministic_gaps(rate=1.0)
        assert next(stream) == (1.0, 0)
        assert next(stream) == (1.0, 1)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            next(deterministic_gaps(rate=0.0))


class TestPoisson:
    def test_mean_gap_matches_rate(self, rng):
        gaps = [g for g, _ in poisson_gaps(rate=5.0, rng=rng, count=20_000)]
        assert np.mean(gaps) == pytest.approx(0.2, rel=0.05)

    def test_count_respected(self, rng):
        assert len(list(poisson_gaps(rate=1.0, rng=rng, count=7))) == 7

    def test_gaps_nonnegative(self, rng):
        assert all(g >= 0 for g, _ in poisson_gaps(rate=1.0, rng=rng, count=1000))

    def test_deterministic_under_seed(self):
        a = [g for g, _ in poisson_gaps(2.0, np.random.default_rng(3), count=10)]
        b = [g for g, _ in poisson_gaps(2.0, np.random.default_rng(3), count=10)]
        assert a == b

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            next(poisson_gaps(rate=-1.0, rng=rng))


class TestBurst:
    def test_burst_rate_higher_during_burst(self, rng):
        gaps = list(
            burst_gaps(
                base_rate=1.0,
                burst_rate=50.0,
                burst_every=100.0,
                burst_duration=10.0,
                rng=rng,
                count=3000,
            )
        )
        values = np.array([g for g, _ in gaps])
        # mixture of fast (0.02 mean) and slow (1.0 mean) gaps
        assert values.min() < 0.1
        assert values.max() > 0.5

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            next(burst_gaps(0.0, 1.0, 10.0, 1.0, rng))
        with pytest.raises(ValueError):
            next(burst_gaps(1.0, 1.0, 10.0, 20.0, rng))
