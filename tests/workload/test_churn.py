"""Tests for the worker-churn process."""

import pytest

from repro.model.task import TaskPhase
from repro.workload.churn import ChurnProcess

from ..platform.helpers import build_server, reliable_behavior, submit


def _churned_server(n_workers=4, mean_session=20.0, mean_absence=10.0, seed=5):
    engine, server = build_server(n_workers=n_workers, seed=seed)
    import numpy as np

    churn = ChurnProcess(
        engine,
        server,
        rng=np.random.default_rng(seed),
        mean_session_s=mean_session,
        mean_absence_s=mean_absence,
    )
    churn.track_all_workers()
    return engine, server, churn


class TestSessions:
    def test_workers_cycle_offline_and_back(self):
        engine, server, churn = _churned_server()
        engine.run(until=500.0)
        assert churn.stats.departures > 0
        assert churn.stats.returns > 0
        # returns lag departures by at most the currently-offline workers
        assert churn.stats.departures - churn.stats.returns <= 4

    def test_online_fraction_tracks_state(self):
        engine, server, churn = _churned_server(n_workers=10)
        engine.run(until=300.0)
        online_now = sum(1 for _ in server.profiling)
        assert churn.online_fraction == pytest.approx(online_now / 10)

    def test_departed_worker_leaves_registry(self):
        engine, server, churn = _churned_server(n_workers=1, mean_session=5.0,
                                                mean_absence=1000.0)
        engine.run(until=100.0)
        assert churn.stats.departures == 1
        assert len(server.profiling) == 0

    def test_returning_worker_keeps_history(self):
        engine, server, churn = _churned_server(
            n_workers=1, mean_session=50.0, mean_absence=5.0
        )
        task = submit(server, engine, deadline=300.0)
        engine.run(until=30.0)
        assert server.metrics.completed == 1
        history_before = list(server.profiling.get(0).execution_times)
        engine.run(until=400.0)
        if 0 in server.profiling:  # worker is back online
            assert server.profiling.get(0).execution_times[: len(history_before)] == (
                history_before
            )

    def test_tasks_disrupted_by_departure_requeue(self):
        # one slow worker, frequent departures: his running task must be
        # withdrawn, not lost
        engine, server, churn = _churned_server(
            n_workers=1, mean_session=3.0, mean_absence=3.0
        )
        server._behaviors[0] = reliable_behavior(min_time=30.0, max_time=40.0)
        task = submit(server, engine, deadline=2000.0)
        engine.run(until=200.0)
        if churn.stats.tasks_disrupted:
            assert task.phase in (
                TaskPhase.UNASSIGNED, TaskPhase.ASSIGNED, TaskPhase.COMPLETED,
                TaskPhase.EXPIRED,
            )
            server.metrics.check_conservation()

    def test_double_tracking_rejected(self):
        engine, server, churn = _churned_server(n_workers=1)
        profile = server.profiling.get(0)
        with pytest.raises(ValueError, match="already tracked"):
            churn.track(profile, server._behaviors[0])

    def test_invalid_means_rejected(self):
        import numpy as np

        engine, server = build_server(n_workers=1)
        with pytest.raises(ValueError):
            ChurnProcess(engine, server, np.random.default_rng(0), mean_session_s=0.0)

    def test_stop_freezes_state(self):
        engine, server, churn = _churned_server(n_workers=3)
        engine.run(until=50.0)
        departures = churn.stats.departures
        churn.stop()
        engine.run(until=500.0)
        assert churn.stats.departures == departures


class TestEndToEndWithChurn:
    def test_system_survives_churn(self):
        engine, server, churn = _churned_server(
            n_workers=10, mean_session=60.0, mean_absence=20.0, seed=11
        )
        for i in range(30):
            from repro.sim.events import EventKind

            engine.schedule_at(
                3.0 * i,
                EventKind.TASK_ARRIVAL,
                lambda e: submit(server, engine, deadline=120.0),
            )
        engine.run(until=400.0)
        server.metrics.check_conservation()
        assert server.metrics.received == 30
        assert server.metrics.completed > 0
