"""Distributional tests of the stochastic inputs the validation tier trusts.

The analytic-validation tier (tests/validation/) compares the simulator
against closed-form M/M/c results; that comparison is only meaningful if
(a) :func:`~repro.workload.arrivals.poisson_gaps` really produces
exponential inter-arrival gaps, and (b) :func:`~repro.sim.rng.spawn_seeds`
repetitions really are independent streams.  Both are pinned here with
seeded Kolmogorov-Smirnov tests — deterministic in the seed, so a failure
is a generator regression, never flakiness.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.sim.rng import RngRegistry, spawn_seeds
from repro.workload.arrivals import poisson_gaps

N = 20_000
ALPHA = 1e-3  # generous for a seeded (non-flaky) test


def draw_gaps(rate, seed, n=N, stream="arrivals"):
    rng = RngRegistry(seed=seed).stream(stream)
    return np.array([gap for gap, _ in poisson_gaps(rate, rng, count=n)])


class TestPoissonGapsAreExponential:
    @pytest.mark.parametrize("rate", [0.5, 1.0, 9.375])
    def test_ks_against_exponential(self, rate):
        gaps = draw_gaps(rate, seed=7)
        result = sps.kstest(gaps, "expon", args=(0.0, 1.0 / rate))
        assert result.pvalue > ALPHA, (
            f"gaps at rate {rate} rejected as Exp({rate}): "
            f"D={result.statistic:.4f} p={result.pvalue:.2e}"
        )

    def test_mean_matches_rate(self):
        rate = 2.0
        gaps = draw_gaps(rate, seed=11)
        assert gaps.mean() == pytest.approx(1.0 / rate, rel=0.05)

    def test_memorylessness(self):
        # Exponentials conditioned on exceeding t are again exponential:
        # the defining property the M/M/c analysis rests on.
        rate = 1.0
        gaps = draw_gaps(rate, seed=13, n=60_000)
        t = 0.5
        excess = gaps[gaps > t] - t
        result = sps.kstest(excess, "expon", args=(0.0, 1.0 / rate))
        assert result.pvalue > ALPHA

    def test_counts_are_poisson_distributed(self):
        # Bin arrival times into unit windows; counts must be Poisson(rate)
        # (chi-squared on the low-count classes).
        rate = 3.0
        gaps = draw_gaps(rate, seed=17, n=30_000)
        times = np.cumsum(gaps)
        horizon = int(times[-1])
        counts = np.bincount(times[times < horizon].astype(int), minlength=horizon)
        kmax = 9
        observed = np.bincount(np.minimum(counts, kmax), minlength=kmax + 1)
        pmf = sps.poisson(rate).pmf(np.arange(kmax))
        expected = np.append(pmf, 1.0 - pmf.sum()) * horizon
        chi2 = sps.chisquare(observed, expected)
        assert chi2.pvalue > ALPHA


class TestSpawnSeedIndependence:
    def test_streams_share_no_prefix(self):
        children = spawn_seeds(0, 20)
        draws = [
            np.random.default_rng(c).integers(0, 2**63, size=64) for c in children
        ]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i][:8], draws[j][:8])

    def test_child_streams_uncorrelated(self):
        # Pairwise Pearson correlation of long uniform draws stays tiny.
        children = spawn_seeds(1, 8)
        draws = [
            np.random.default_rng(c).random(50_000) for c in children
        ]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                r = np.corrcoef(draws[i], draws[j])[0, 1]
                assert abs(r) < 0.02

    def test_pooled_children_still_uniform(self):
        # Concatenating child streams must not distort the marginal law —
        # a KS check that spawning introduces no structure.
        children = spawn_seeds(2, 10)
        pooled = np.concatenate(
            [np.random.default_rng(c).random(5_000) for c in children]
        )
        result = sps.kstest(pooled, "uniform")
        assert result.pvalue > ALPHA

    def test_gap_streams_from_children_are_independent_exponentials(self):
        # The exact construction the validation tier uses: each repetition
        # seeds its own registry and draws its own arrival stream.
        rate = 2.0
        gap_sets = [draw_gaps(rate, seed=child, n=5_000) for child in spawn_seeds(3, 4)]
        for gaps in gap_sets:
            assert sps.kstest(gaps, "expon", args=(0.0, 1.0 / rate)).pvalue > ALPHA
        for i in range(len(gap_sets)):
            for j in range(i + 1, len(gap_sets)):
                assert not np.array_equal(gap_sets[i], gap_sets[j])
                r = np.corrcoef(gap_sets[i], gap_sets[j])[0, 1]
                assert abs(r) < 0.05
