"""Unit tests for shard specs, fingerprints, and id hygiene."""

import pytest

from repro.dist import ShardSpec, TelemetrySpec, fingerprint, safe_id
from repro.dist.shards import check_unique_ids
from repro.experiments.config import EndToEndConfig
from repro.platform.policies import greedy_policy


def _spec(**payload):
    return ShardSpec(shard_id="s1", kind="endtoend", payload=payload)


class TestFingerprint:
    def test_deterministic(self):
        a = _spec(config=EndToEndConfig(seed=1), policy=greedy_policy())
        b = _spec(config=EndToEndConfig(seed=1), policy=greedy_policy())
        assert fingerprint(a) == fingerprint(b)

    def test_payload_change_changes_fingerprint(self):
        a = _spec(config=EndToEndConfig(seed=1))
        b = _spec(config=EndToEndConfig(seed=2))
        assert fingerprint(a) != fingerprint(b)

    def test_dict_order_insensitive(self):
        a = ShardSpec("s1", "k", {"x": 1, "y": 2})
        b = ShardSpec("s1", "k", {"y": 2, "x": 1})
        assert fingerprint(a) == fingerprint(b)

    def test_kind_and_id_participate(self):
        assert fingerprint(ShardSpec("s1", "a", {})) != fingerprint(
            ShardSpec("s1", "b", {})
        )
        assert fingerprint(ShardSpec("s1", "a", {})) != fingerprint(
            ShardSpec("s2", "a", {})
        )


class TestIds:
    def test_safe_id_sanitizes(self):
        assert safe_id("scal", 100, 1.5, "react/fast") == "scal-100-1.5-react_fast"

    def test_duplicate_ids_rejected(self):
        specs = [ShardSpec("dup", "k", {}), ShardSpec("dup", "k", {})]
        with pytest.raises(ValueError, match="duplicate shard id"):
            check_unique_ids(specs)


class TestTelemetrySpec:
    def test_enabled_flag(self):
        assert not TelemetrySpec(prefix="x").enabled
        assert TelemetrySpec(prefix="x", metrics_dir="/tmp/m").enabled
        assert TelemetrySpec(prefix="x", trace_dir="/tmp/t").enabled
