"""The determinism contract: ``--parallel N`` never changes the bytes.

Runs the same seeded workload inline (``parallel=1``) and across a real
``spawn`` process pool (``parallel=4``), then compares the *bytes* of the
exported result JSON/CSV and per-shard telemetry files, plus the merged
metrics snapshots — not just approximate statistics.  Also exercises the
kill-and-resume path end to end: a resumed run restores finished shards
from checkpoints and still produces identical bytes.
"""

from pathlib import Path

from repro.dist import TelemetrySpec, run_comparison_sharded
from repro.experiments.config import EndToEndConfig
from repro.experiments.export import export_endtoend
from repro.platform.policies import greedy_policy, traditional_policy

POLICIES = (greedy_policy(), traditional_policy())

CONFIG = EndToEndConfig(
    n_workers=25, arrival_rate=0.5, n_tasks=30, drain_time=120.0
)


def _run(tmp_path: Path, tag: str, parallel: int, checkpoint_dir=None, telemetry_dir=None):
    out_dir = tmp_path / tag
    telemetry_root = Path(telemetry_dir) if telemetry_dir is not None else out_dir
    telemetry = TelemetrySpec(
        prefix="endtoend",
        trace_dir=str(telemetry_root / "trace"),
        metrics_dir=str(telemetry_root / "metrics"),
    )
    run = run_comparison_sharded(
        CONFIG,
        policies=POLICIES,
        parallel=parallel,
        checkpoint_dir=checkpoint_dir,
        telemetry=telemetry,
    )
    export_dir = out_dir / "export"
    export_dir.mkdir(parents=True)
    export_endtoend(run.results, str(export_dir))
    return run, out_dir


def _file_map(root: Path):
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def _assert_identical_outputs(dir_a: Path, dir_b: Path):
    files_a, files_b = _file_map(dir_a), _file_map(dir_b)
    assert set(files_a) == set(files_b)
    for name in files_a:
        assert files_a[name] == files_b[name], f"{name} differs between runs"


class TestParallelEquivalence:
    def test_parallel_4_is_byte_identical_to_parallel_1(self, tmp_path):
        serial, serial_dir = _run(tmp_path, "serial", parallel=1)
        pooled, pooled_dir = _run(tmp_path, "pooled", parallel=4)

        # result objects merge identically...
        assert list(serial.results) == list(pooled.results)
        for name in serial.results:
            assert serial.results[name].summary == pooled.results[name].summary

        # ...the merged metrics snapshots match sample for sample...
        assert serial.snapshot is not None and pooled.snapshot is not None
        assert serial.snapshot.samples == pooled.snapshot.samples
        assert serial.snapshot.kinds == pooled.snapshot.kinds

        # ...and every exported file (result JSON/CSV, per-shard telemetry)
        # is byte-identical.
        _assert_identical_outputs(serial_dir, pooled_dir)

    def test_resumed_run_is_byte_identical(self, tmp_path):
        # Resume mirrors CLI usage: same flags (telemetry dirs included)
        # across the original and the resumed invocation — only then do the
        # shard fingerprints match the checkpoints.
        ckpt = tmp_path / "ckpt"
        telemetry_dir = tmp_path / "telemetry"
        fresh, fresh_dir = _run(
            tmp_path, "fresh", parallel=2,
            checkpoint_dir=ckpt, telemetry_dir=telemetry_dir,
        )
        assert fresh.computed == len(POLICIES) and fresh.resumed == 0

        resumed, resumed_dir = _run(
            tmp_path, "resumed", parallel=2,
            checkpoint_dir=ckpt, telemetry_dir=telemetry_dir,
        )
        assert resumed.computed == 0
        assert resumed.resumed == len(POLICIES)
        for name in fresh.results:
            assert fresh.results[name].summary == resumed.results[name].summary
        assert fresh.snapshot.samples == resumed.snapshot.samples

        # the resumed run exports the same result bytes without recomputing
        _assert_identical_outputs(fresh_dir / "export", resumed_dir / "export")
