"""Sharded drivers produce exactly what the sequential drivers produce.

Every assertion here is exact equality, not statistical closeness: shards
are hermetic re-runs of the same seeded simulations, so the merged results
must match the sequential drivers field for field.
"""

import pytest

from repro.dist import (
    run_chaos_sharded,
    run_comparison_sharded,
    run_endtoend_repetitions,
    run_scalability_sharded,
)
from repro.experiments.chaos import ChaosConfig, run_chaos_comparison, standard_schedule
from repro.experiments.config import EndToEndConfig, ScalabilityConfig
from repro.experiments.endtoend import run_comparison
from repro.experiments.scalability import run_scalability
from repro.platform.policies import greedy_policy, traditional_policy

POLICIES = (greedy_policy(), traditional_policy())

ENDTOEND = EndToEndConfig(
    n_workers=25, arrival_rate=0.5, n_tasks=30, drain_time=120.0
)

CHAOS = ChaosConfig(
    n_workers=20, arrival_rate=0.5, n_tasks=25, drain_time=100.0
)

SCALABILITY = ScalabilityConfig(
    worker_sizes=(20, 40),
    rates=(0.4, 0.8),
    duration=60.0,
    drain_time=100.0,
)


class TestEndToEnd:
    def test_matches_sequential_comparison(self):
        sequential = run_comparison(ENDTOEND, policies=POLICIES)
        sharded = run_comparison_sharded(ENDTOEND, policies=POLICIES)
        assert list(sharded.results) == list(sequential)
        for name in sequential:
            seq, sh = sequential[name], sharded.results[name]
            assert sh.summary == seq.summary
            assert sh.deadline_series == seq.deadline_series
            assert sh.feedback_series == seq.feedback_series
            assert sh.withdrawals == seq.withdrawals
            assert sh.batches == seq.batches

    def test_duplicate_policies_rejected(self):
        with pytest.raises(ValueError, match="duplicate policy"):
            run_comparison_sharded(
                ENDTOEND, policies=(greedy_policy(), greedy_policy())
            )


class TestChaos:
    def test_matches_sequential_comparison(self):
        schedule = standard_schedule(CHAOS)
        sequential = run_chaos_comparison(
            CHAOS, schedule=schedule, policies=POLICIES
        )
        sharded = run_chaos_sharded(CHAOS, schedule=schedule, policies=POLICIES)
        assert list(sharded.results) == list(sequential)
        for name in sequential:
            for variant in ("clean", "faulted"):
                seq = sequential[name][variant]
                sh = sharded.results[name][variant]
                assert sh.summary == seq.summary
                assert sh.on_time_fraction == seq.on_time_fraction
                assert sh.fault_log == seq.fault_log
                assert sh.outcomes == seq.outcomes


class TestScalability:
    def test_matches_sequential_sweep(self):
        sequential = run_scalability(SCALABILITY, policies=POLICIES)
        sharded = run_scalability_sharded(SCALABILITY, policies=POLICIES)
        assert sharded.results.points == sequential.points
        assert sharded.results.policies() == sequential.policies()


class TestRepetitions:
    def test_spawn_seeded_and_prefix_stable(self):
        policy = POLICIES[0]
        three = run_endtoend_repetitions(policy, ENDTOEND, repetitions=3)
        assert len(three.results) == 3
        seeds = [r.config.seed for r in three.results]
        assert len(set(seeds)) == 3
        assert ENDTOEND.seed not in seeds  # children, not the root seed

        two = run_endtoend_repetitions(policy, ENDTOEND, repetitions=2)
        assert [r.config.seed for r in two.results] == seeds[:2]
        assert [r.summary for r in two.results] == [
            r.summary for r in three.results[:2]
        ]

    def test_repetitions_validated(self):
        with pytest.raises(ValueError, match="repetitions"):
            run_endtoend_repetitions(POLICIES[0], ENDTOEND, repetitions=0)
