"""Executor tests: ordering, checkpoint/resume, staleness, failure recovery.

These use a test-only shard kind so they exercise the executor machinery
without paying for real simulations.  Custom kinds registered at test time
exist only in this process, so every test here runs with ``parallel=1``
(the spawn-pool path is covered by the equivalence suite, whose shards use
the built-in kinds).
"""

import pickle

import pytest

from repro.dist import ShardOutcome, ShardSpec, execute_shards, fingerprint
from repro.dist.executor import load_checkpoint, write_checkpoint
from repro.dist.worker import HANDLERS, register_handler


@pytest.fixture(autouse=True)
def _echo_kind():
    """A shard kind that returns its payload, with optional failure."""

    def run(spec: ShardSpec) -> ShardOutcome:
        if spec.payload.get("fail"):
            raise RuntimeError(f"shard {spec.shard_id} told to fail")
        return ShardOutcome(
            shard_id=spec.shard_id, kind=spec.kind, result=spec.payload["value"]
        )

    register_handler("echo", run)
    yield
    HANDLERS.pop("echo", None)


def _specs(*values, fail=()):
    return [
        ShardSpec(
            shard_id=f"echo-{i}",
            kind="echo",
            payload={"value": v, "fail": f"echo-{i}" in fail},
        )
        for i, v in enumerate(values)
    ]


class TestExecution:
    def test_outcomes_follow_spec_order(self):
        report = execute_shards(_specs("a", "b", "c"))
        assert [o.result for o in report.outcomes] == ["a", "b", "c"]
        assert report.computed == 3 and report.resumed == 0

    def test_duplicate_ids_rejected(self):
        spec = ShardSpec("same", "echo", {"value": 1})
        with pytest.raises(ValueError, match="duplicate"):
            execute_shards([spec, spec])

    def test_parallel_must_be_positive(self):
        with pytest.raises(ValueError, match="parallel"):
            execute_shards(_specs("a"), parallel=0)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown shard kind"):
            execute_shards([ShardSpec("x", "no-such-kind", {})])


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        spec = _specs("a")[0]
        outcome = ShardOutcome(shard_id=spec.shard_id, kind=spec.kind, result="a")
        write_checkpoint(tmp_path, spec, outcome)
        loaded = load_checkpoint(tmp_path, spec)
        assert loaded is not None
        assert loaded.result == "a"
        assert loaded.from_checkpoint

    def test_missing_checkpoint_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path, _specs("a")[0]) is None

    def test_stale_fingerprint_ignored(self, tmp_path):
        old = _specs("a")[0]
        outcome = ShardOutcome(shard_id=old.shard_id, kind=old.kind, result="a")
        write_checkpoint(tmp_path, old, outcome)
        # Same shard id, different payload: the old result must not be reused.
        changed = ShardSpec(old.shard_id, old.kind, {"value": "b", "fail": False})
        assert fingerprint(changed) != fingerprint(old)
        assert load_checkpoint(tmp_path, changed) is None

    def test_corrupt_checkpoint_ignored(self, tmp_path):
        spec = _specs("a")[0]
        (tmp_path / f"{spec.shard_id}.pkl").write_bytes(b"not a pickle")
        assert load_checkpoint(tmp_path, spec) is None

    def test_truncated_checkpoint_ignored(self, tmp_path):
        spec = _specs("a")[0]
        outcome = ShardOutcome(shard_id=spec.shard_id, kind=spec.kind, result="a")
        write_checkpoint(tmp_path, spec, outcome)
        path = tmp_path / f"{spec.shard_id}.pkl"
        path.write_bytes(path.read_bytes()[:10])
        assert load_checkpoint(tmp_path, spec) is None

    def test_wrong_version_ignored(self, tmp_path):
        spec = _specs("a")[0]
        payload = {
            "version": -1,
            "fingerprint": fingerprint(spec),
            "outcome": ShardOutcome(spec.shard_id, spec.kind, "a"),
        }
        (tmp_path / f"{spec.shard_id}.pkl").write_bytes(pickle.dumps(payload))
        assert load_checkpoint(tmp_path, spec) is None


class TestResume:
    def test_resume_skips_finished_shards(self, tmp_path):
        specs = _specs("a", "b", "c")
        first = execute_shards(specs, checkpoint_dir=tmp_path)
        assert first.computed == 3
        second = execute_shards(specs, checkpoint_dir=tmp_path)
        assert second.computed == 0 and second.resumed == 3
        assert [o.result for o in second.outcomes] == ["a", "b", "c"]
        assert all(o.from_checkpoint for o in second.outcomes)

    def test_killed_run_resumes_without_recompute(self, tmp_path):
        """Shard 1 fails mid-run; finished shard 0 must survive the 'kill'
        and be restored — not recomputed — on the resumed run."""
        failing = _specs("a", "b", "c", fail=("echo-1",))
        with pytest.raises(RuntimeError, match="echo-1"):
            execute_shards(failing, checkpoint_dir=tmp_path)
        # the shard that completed before the crash left its checkpoint
        assert (tmp_path / "echo-0.pkl").exists()
        assert not (tmp_path / "echo-1.pkl").exists()

        healthy = _specs("a", "b", "c")
        resumed = execute_shards(healthy, checkpoint_dir=tmp_path)
        assert resumed.resumed == 1 and resumed.computed == 2
        assert [o.from_checkpoint for o in resumed.outcomes] == [True, False, False]
        assert [o.result for o in resumed.outcomes] == ["a", "b", "c"]

    def test_resume_with_changed_config_recomputes(self, tmp_path):
        execute_shards(_specs("a"), checkpoint_dir=tmp_path)
        changed = [ShardSpec("echo-0", "echo", {"value": "A", "fail": False})]
        report = execute_shards(changed, checkpoint_dir=tmp_path)
        assert report.resumed == 0 and report.computed == 1
        assert report.outcomes[0].result == "A"
