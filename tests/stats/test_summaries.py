"""Unit tests for series and table helpers."""

import pytest

from repro.stats.summaries import (
    cumulative_fraction,
    downsample,
    format_series,
    format_table,
    geometric_mean,
)


class TestDownsample:
    def test_short_series_unchanged(self):
        series = [(1, 1), (2, 2)]
        assert downsample(series, 10) == series

    def test_keeps_endpoints(self):
        series = [(i, i * i) for i in range(100)]
        sampled = downsample(series, 5)
        assert sampled[0] == series[0]
        assert sampled[-1] == series[-1]
        assert len(sampled) <= 5

    def test_monotone_x_preserved(self):
        series = [(i, 0) for i in range(1000)]
        xs = [x for x, _ in downsample(series, 20)]
        assert xs == sorted(xs)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            downsample([(1, 1)], 1)


class TestCumulativeFraction:
    def test_fractions(self):
        assert cumulative_fraction([(2, 1), (4, 3)]) == [(2, 0.5), (4, 0.75)]

    def test_zero_denominator(self):
        assert cumulative_fraction([(0, 0)]) == [(0, 0.0)]


class TestFormatTable:
    def test_renders_alignment(self):
        table = format_table(["name", "value"], [("a", 1), ("longer", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_float_formatting(self):
        table = format_table(["x"], [(0.123456,)])
        assert "0.1235" in table


class TestFormatSeries:
    def test_includes_caption_and_counts(self):
        series = [(float(i), float(i)) for i in range(100)]
        text = format_series("metric", series, points=10)
        assert "100 samples" in text
        assert "metric" in text


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
