"""Tests for the timeline recorder."""

import pytest

from repro.stats.timeline import Timeline, TimelineRecorder, TimelineSample, summarize_timeline

from ..platform.helpers import build_server, reliable_behavior, submit


def _sample(time=0.0, unassigned=0, executing=0, **kw):
    defaults = dict(
        time=time, unassigned=unassigned, executing=executing,
        busy_workers=0, available_workers=1, trained_workers=0,
        completed=0, completed_on_time=0, expired_unassigned=0,
        matcher_busy_seconds=0.0,
    )
    defaults.update(kw)
    return TimelineSample(**defaults)


class TestTimeline:
    def test_column_extraction(self):
        tl = Timeline(samples=[_sample(0.0, unassigned=3), _sample(10.0, unassigned=7)])
        assert tl.column("unassigned") == [3, 7]
        assert tl.peak("unassigned") == 7

    def test_unknown_column_rejected(self):
        tl = Timeline(samples=[_sample()])
        with pytest.raises(KeyError):
            tl.column("bogus")

    def test_at_returns_latest_before(self):
        tl = Timeline(samples=[_sample(0.0), _sample(10.0), _sample(20.0)])
        assert tl.at(15.0).time == 10.0
        with pytest.raises(ValueError):
            tl.at(-1.0)

    def test_empty_column_and_peak(self):
        tl = Timeline()
        assert tl.column("unassigned") == []
        with pytest.raises(ValueError):
            tl.peak("unassigned")

    def test_as_rows_round_trip(self):
        tl = Timeline(samples=[_sample(5.0, unassigned=2)])
        rows = tl.as_rows()
        assert rows[0]["time"] == 5.0
        assert rows[0]["unassigned"] == 2


class TestRecorder:
    def test_samples_on_grid(self):
        engine, server = build_server(n_workers=2)
        recorder = TimelineRecorder(engine, server, period=5.0)
        submit(server, engine)
        engine.run(until=20.0)
        times = recorder.timeline.column("time")
        assert times == [0.0, 5.0, 10.0, 15.0, 20.0]

    def test_observes_queue_drain(self):
        engine, server = build_server(n_workers=2)
        recorder = TimelineRecorder(engine, server, period=1.0)
        for _ in range(2):
            submit(server, engine)
        engine.run(until=30.0)
        executing = recorder.timeline.column("executing")
        assert max(executing) >= 1  # tasks were seen running
        assert executing[-1] == 0  # and eventually drained
        completed = recorder.timeline.column("completed")
        assert completed == sorted(completed)
        assert completed[-1] == 2

    def test_stop_halts_sampling(self):
        engine, server = build_server(n_workers=1)
        recorder = TimelineRecorder(engine, server, period=1.0)
        engine.run(until=3.0)
        recorder.stop()
        engine.run(until=10.0)
        assert recorder.timeline.column("time")[-1] <= 3.0

    def test_invalid_period(self):
        engine, server = build_server(n_workers=1)
        with pytest.raises(ValueError):
            TimelineRecorder(engine, server, period=0.0)

    def test_summary_keys(self):
        engine, server = build_server(n_workers=1)
        recorder = TimelineRecorder(engine, server, period=2.0)
        submit(server, engine)
        engine.run(until=10.0)
        summary = summarize_timeline(recorder.timeline)
        assert summary["samples"] == len(recorder.timeline)
        assert "peak_unassigned" in summary
        assert summarize_timeline(Timeline()) == {}
