"""Tests for the pluggable duration-distribution families."""

import numpy as np
import pytest

from repro.stats.duration_models import (
    EmpiricalFamily,
    LogNormalFamily,
    PowerLawFamily,
    make_family,
)
from repro.stats.powerlaw import PowerLawFit

HISTORY = [3.0, 4.0, 5.0, 8.0, 20.0]


class TestPowerLawFamily:
    def test_returns_powerlaw_fit(self):
        fit = PowerLawFamily().fit(HISTORY)
        assert isinstance(fit, PowerLawFit)
        assert fit.k_min == 3.0


class TestEmpiricalFamily:
    def test_ccdf_matches_counts(self):
        model = EmpiricalFamily(tail_floor=0.0).fit(HISTORY)
        assert model.ccdf_scalar(0.0) == 1.0
        assert model.ccdf_scalar(3.0) == 1.0  # all samples >= 3
        assert model.ccdf_scalar(4.5) == pytest.approx(3 / 5)
        assert model.ccdf_scalar(100.0) == 0.0

    def test_tail_floor_applies_beyond_max(self):
        model = EmpiricalFamily(tail_floor=0.05).fit(HISTORY)
        assert model.ccdf_scalar(100.0) == 0.05
        # but never lifts values below the floor inside the support
        assert model.ccdf_scalar(3.0) == 1.0

    def test_ccdf_monotone(self):
        model = EmpiricalFamily().fit(HISTORY)
        ks = np.linspace(0, 50, 200)
        values = model.ccdf(ks)
        assert np.all(np.diff(values) <= 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalFamily(tail_floor=1.0)
        with pytest.raises(ValueError):
            EmpiricalFamily().fit([])
        with pytest.raises(ValueError):
            EmpiricalFamily().fit([-1.0])


class TestLogNormalFamily:
    def test_recovers_parameters(self, rng):
        mu, sigma = 2.0, 0.5
        samples = np.exp(rng.normal(mu, sigma, size=20_000))
        model = LogNormalFamily().fit(samples)
        assert model.mu == pytest.approx(mu, abs=0.02)
        assert model.sigma == pytest.approx(sigma, abs=0.02)

    def test_ccdf_median_is_half(self):
        model = LogNormalFamily().fit(HISTORY)
        median = float(np.exp(model.mu))
        assert model.ccdf_scalar(median) == pytest.approx(0.5, abs=1e-9)

    def test_ccdf_bounds_and_monotone(self):
        model = LogNormalFamily().fit(HISTORY)
        ks = np.linspace(0, 100, 300)
        values = model.ccdf(ks)
        assert np.all((values >= 0) & (values <= 1))
        assert np.all(np.diff(values) <= 1e-12)

    def test_degenerate_history_sigma_floored(self):
        model = LogNormalFamily(min_sigma=0.05).fit([5.0, 5.0, 5.0])
        assert model.sigma == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormalFamily(min_sigma=0.0)
        with pytest.raises(ValueError):
            LogNormalFamily().fit([])


class TestFactory:
    @pytest.mark.parametrize("name", ["power-law", "empirical", "lognormal"])
    def test_known_names(self, name):
        family = make_family(name)
        model = family.fit(HISTORY)
        # every family exposes the vectorized ccdf the estimator consumes
        value = float(np.asarray(model.ccdf(np.array([10.0])))[0])
        assert 0.0 <= value <= 1.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_family("weibull")


class TestEstimatorIntegration:
    def test_estimator_with_empirical_family(self, make_worker):
        from repro.core.deadline import DeadlineEstimator

        profile, _ = make_worker(history=[5.0, 6.0, 7.0])
        estimator = DeadlineEstimator(min_history=3, family=EmpiricalFamily(0.0))
        # all history <= 7: a 10 s deadline is "certain" empirically
        assert estimator.completion_probability(profile, 10.0).probability == 1.0
        # and a 4 s deadline keeps Pr(D < 4) = 0 (all samples >= 5)
        assert estimator.completion_probability(profile, 4.0).probability == 0.0

    def test_policy_rejects_unknown_model(self):
        from repro.platform.policies import react_policy

        with pytest.raises(ValueError, match="duration_model"):
            react_policy(duration_model="weibull")

    def test_server_end_to_end_with_each_family(self):
        from repro.experiments.config import EndToEndConfig
        from repro.experiments.endtoend import run_endtoend
        from repro.platform.policies import react_policy

        config = EndToEndConfig(
            n_workers=30, arrival_rate=0.3, n_tasks=60, drain_time=300
        )
        for model in ("power-law", "empirical", "lognormal"):
            result = run_endtoend(react_policy(duration_model=model), config)
            result.metrics.check_conservation()
            assert result.summary["completed"] > 0
