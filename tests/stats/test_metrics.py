"""Unit tests for the metrics collector."""

import pytest

from repro.stats.metrics import MetricsCollector, TaskOutcome


def _outcome(task_id=0, met=True, positive=True, completed=10.0, **kw):
    defaults = dict(
        task_id=task_id,
        submitted_at=0.0,
        completed_at=completed,
        deadline=60.0,
        met_deadline=met,
        positive_feedback=positive,
        assignments=1,
        final_worker=1,
        worker_time=5.0,
        total_time=10.0,
    )
    defaults.update(kw)
    return TaskOutcome(**defaults)


class TestCounting:
    def test_completion_updates_series(self):
        m = MetricsCollector()
        for _ in range(3):
            m.record_received()
        m.record_completion(_outcome(0, met=True, positive=True))
        m.record_completion(_outcome(1, met=False, positive=False))
        assert m.completed == 2
        assert m.completed_on_time == 1
        assert m.positive_feedbacks == 1
        assert m.deadline_series == [(3, 1), (3, 1)]
        assert m.feedback_series == [(3, 1), (3, 1)]

    def test_on_time_fraction_over_received(self):
        """Figs. 9-10 normalize by *received*, not completed."""
        m = MetricsCollector()
        for _ in range(4):
            m.record_received()
        m.record_completion(_outcome(met=True))
        assert m.on_time_fraction == 0.25
        assert m.positive_feedback_fraction == 0.25

    def test_empty_fractions_zero(self):
        m = MetricsCollector()
        assert m.on_time_fraction == 0.0
        assert m.positive_feedback_fraction == 0.0

    def test_reassignment_counting(self):
        m = MetricsCollector()
        m.record_assignment(first=True)
        m.record_assignment(first=False)
        m.record_assignment(first=False)
        assert m.assigned == 3
        assert m.reassignments == 2

    def test_matcher_accounting(self):
        m = MetricsCollector()
        m.record_matcher_run(1.5)
        m.record_matcher_run(0.5)
        assert m.matcher_invocations == 2
        assert m.matcher_simulated_seconds == 2.0


class TestAverages:
    def test_average_worker_time(self):
        m = MetricsCollector()
        m.record_received()
        m.record_received()
        m.record_completion(_outcome(0, worker_time=4.0))
        m.record_completion(_outcome(1, worker_time=8.0))
        assert m.average_worker_time() == 6.0

    def test_averages_none_when_empty(self):
        m = MetricsCollector()
        assert m.average_worker_time() is None
        assert m.average_total_time() is None

    def test_expired_tasks_excluded_from_averages(self):
        m = MetricsCollector()
        m.record_received()
        m.record_expired_unassigned(
            _outcome(0, met=False, positive=False, completed=None,
                     worker_time=None, total_time=None)
        )
        assert m.average_worker_time() is None
        assert m.expired_unassigned == 1

    def test_percentiles(self):
        m = MetricsCollector()
        for i in range(10):
            m.record_received()
            m.record_completion(_outcome(i, worker_time=float(i + 1)))
        p = m.worker_time_percentiles((50,))
        assert p[50] == pytest.approx(5.5)


class TestConservation:
    def test_valid_accounting_passes(self):
        m = MetricsCollector()
        m.record_received()
        m.record_received()
        m.record_completion(_outcome(0))
        m.check_conservation()

    def test_overcount_detected(self):
        m = MetricsCollector()
        m.record_completion(_outcome(0))
        with pytest.raises(AssertionError, match="accounting"):
            m.check_conservation()

    def test_summary_keys_stable(self):
        m = MetricsCollector()
        summary = m.summary()
        expected = {
            "received", "completed", "completed_on_time", "on_time_fraction",
            "positive_feedbacks", "positive_feedback_fraction", "reassignments",
            "expired_unassigned", "expiry_returns", "avg_worker_time",
            "avg_total_time", "matcher_invocations", "matcher_simulated_seconds",
        }
        assert expected <= set(summary)
