"""Unit tests for the power-law machinery behind Eqs. 2-3."""

import numpy as np
import pytest

from repro.stats.powerlaw import (
    ALPHA_CAP,
    FitMethod,
    PowerLawFit,
    fit_power_law,
    ks_distance,
)


class TestPowerLawFitObject:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawFit(alpha=2.0, k_min=0.0, n_samples=5)
        with pytest.raises(ValueError):
            PowerLawFit(alpha=1.0, k_min=1.0, n_samples=5)
        with pytest.raises(ValueError):
            PowerLawFit(alpha=float("nan"), k_min=1.0, n_samples=5)
        with pytest.raises(ValueError):
            PowerLawFit(alpha=2.0, k_min=1.0, n_samples=0)

    def test_ccdf_at_kmin_is_one(self):
        fit = PowerLawFit(alpha=2.5, k_min=3.0, n_samples=10)
        assert fit.ccdf(3.0) == 1.0
        assert fit.ccdf(1.0) == 1.0  # head treated as "typical or faster"

    def test_ccdf_decreases(self):
        fit = PowerLawFit(alpha=2.5, k_min=1.0, n_samples=10)
        ks = np.array([1, 2, 4, 8, 16], dtype=float)
        values = fit.ccdf(ks)
        assert np.all(np.diff(values) < 0)

    def test_ccdf_known_value(self):
        # P(k) = (k/k_min)^(1-alpha); alpha=2 -> P(2)=0.5 with k_min=1
        fit = PowerLawFit(alpha=2.0, k_min=1.0, n_samples=10)
        assert fit.ccdf(2.0) == pytest.approx(0.5)
        assert fit.cdf(2.0) == pytest.approx(0.5)

    def test_pdf_zero_below_kmin_and_normalized(self):
        fit = PowerLawFit(alpha=2.5, k_min=2.0, n_samples=10)
        assert fit.pdf(1.0) == 0.0
        xs = np.linspace(2.0, 2000.0, 400_000)
        integral = np.trapezoid(fit.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_quantile_inverts_cdf(self):
        fit = PowerLawFit(alpha=3.0, k_min=1.5, n_samples=10)
        qs = np.array([0.1, 0.5, 0.9])
        ks = fit.quantile(qs)
        assert np.allclose(fit.cdf(ks), qs)

    def test_quantile_bounds(self):
        fit = PowerLawFit(alpha=3.0, k_min=1.5, n_samples=10)
        with pytest.raises(ValueError):
            fit.quantile(1.0)

    def test_median_matches_quantile(self):
        fit = PowerLawFit(alpha=2.0, k_min=1.0, n_samples=10)
        assert fit.median() == pytest.approx(2.0)

    def test_mean_infinite_for_small_alpha(self):
        assert PowerLawFit(alpha=1.9, k_min=1.0, n_samples=10).mean() == float("inf")
        assert PowerLawFit(alpha=3.0, k_min=1.0, n_samples=10).mean() == pytest.approx(2.0)


class TestSampling:
    def test_samples_bounded_below_by_kmin(self, rng):
        fit = PowerLawFit(alpha=2.5, k_min=4.0, n_samples=10)
        samples = fit.sample(rng, size=1000)
        assert samples.min() >= 4.0

    def test_sample_median_matches_model(self, rng):
        fit = PowerLawFit(alpha=2.5, k_min=4.0, n_samples=10)
        samples = fit.sample(rng, size=20_000)
        assert np.median(samples) == pytest.approx(fit.median(), rel=0.05)


class TestFitting:
    def test_fit_recovers_alpha(self, rng):
        true = PowerLawFit(alpha=2.6, k_min=2.0, n_samples=1)
        samples = true.sample(rng, size=20_000)
        fit = fit_power_law(samples, method=FitMethod.CONTINUOUS)
        assert fit.alpha == pytest.approx(2.6, rel=0.05)
        assert fit.k_min == pytest.approx(samples.min())

    def test_paper_method_close_to_continuous_for_large_kmin(self, rng):
        true = PowerLawFit(alpha=2.5, k_min=20.0, n_samples=1)
        samples = true.sample(rng, size=10_000)
        paper = fit_power_law(samples, method=FitMethod.PAPER_DISCRETE)
        cont = fit_power_law(samples, method=FitMethod.CONTINUOUS)
        assert paper.alpha == pytest.approx(cont.alpha, rel=0.05)

    def test_explicit_kmin_respected(self, rng):
        samples = np.array([1.0, 2.0, 3.0, 10.0, 20.0])
        fit = fit_power_law(samples, k_min=3.0)
        assert fit.k_min == 3.0
        assert fit.n_samples == 3  # only tail samples counted

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            fit_power_law([])

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            fit_power_law([1.0, -2.0])

    def test_no_tail_samples_rejected(self):
        with pytest.raises(ValueError, match="k_min"):
            fit_power_law([1.0, 2.0], k_min=5.0)

    def test_degenerate_history_capped(self):
        """All-identical samples drive alpha to infinity; we cap it."""
        fit = fit_power_law([5.0, 5.0, 5.0], method=FitMethod.CONTINUOUS)
        assert fit.alpha == ALPHA_CAP

    def test_subunit_kmin_falls_back_to_continuous(self):
        """The paper's k_min - 1/2 shift breaks for k_min < 0.5."""
        fit = fit_power_law([0.2, 0.4, 0.8, 1.6], method=FitMethod.PAPER_DISCRETE)
        assert fit.alpha > 1.0
        assert np.isfinite(fit.alpha)

    def test_single_sample(self):
        # One observation still yields a usable (steep) fit: with the
        # paper's k_min - 1/2 shift the denominator ln(7/6.5) stays positive.
        fit = fit_power_law([7.0])
        assert fit.k_min == 7.0
        assert 1.0 < fit.alpha <= ALPHA_CAP

    def test_single_sample_continuous_capped(self):
        # The exact MLE degenerates on one sample (ln(k/k) = 0) -> capped.
        fit = fit_power_law([7.0], method=FitMethod.CONTINUOUS)
        assert fit.alpha == ALPHA_CAP


class TestGoodnessOfFit:
    def test_ks_small_for_true_power_law(self, rng):
        true = PowerLawFit(alpha=2.4, k_min=1.0, n_samples=1)
        samples = true.sample(rng, size=5_000)
        fit = fit_power_law(samples, method=FitMethod.CONTINUOUS)
        assert ks_distance(samples, fit) < 0.05

    def test_ks_large_for_uniform_data(self, rng):
        samples = rng.uniform(1.0, 2.0, size=5_000)
        fit = fit_power_law(samples, method=FitMethod.CONTINUOUS)
        assert ks_distance(samples, fit) > 0.1
