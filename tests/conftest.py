"""Shared fixtures for the REACT reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.model.task import Task, TaskCategory, reset_task_ids
from repro.model.worker import WorkerBehavior, WorkerProfile
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture(autouse=True)
def _fresh_task_ids():
    """Keep task ids deterministic per test."""
    reset_task_ids()
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def registry() -> RngRegistry:
    return RngRegistry(seed=99)


@pytest.fixture
def small_graph(rng) -> BipartiteGraph:
    """A 20x12 full bipartite graph with U[0,1] weights."""
    return BipartiteGraph.full(rng.random((20, 12)))


@pytest.fixture
def sparse_graph() -> BipartiteGraph:
    """A hand-built sparse graph with a known optimal matching.

    Workers 0-2, tasks 0-2:
        (0,0,0.9) (0,1,0.5) (1,0,0.8) (1,2,0.7) (2,2,0.6)
    Optimum: (0,0)+(1,2)+... = 0.9 + 0.7 = 1.6, plus (2,?) none free for task 1
    except worker 0... optimal = (0,1)+(1,0)+(2,2) = 0.5+0.8+0.6 = 1.9.
    """
    edges = [(0, 0, 0.9), (0, 1, 0.5), (1, 0, 0.8), (1, 2, 0.7), (2, 2, 0.6)]
    return BipartiteGraph.from_edges(3, 3, edges)


@pytest.fixture
def make_task():
    def _make(
        deadline: float = 90.0,
        submitted_at: float = 0.0,
        category: TaskCategory = TaskCategory.GENERIC,
        reward: float = 0.05,
    ) -> Task:
        return Task(
            latitude=0.0,
            longitude=0.0,
            deadline=deadline,
            reward=reward,
            category=category,
            submitted_at=submitted_at,
        )

    return _make


@pytest.fixture
def make_worker():
    def _make(
        worker_id: int = 0,
        history: list[float] | None = None,
        quality: float = 0.8,
    ) -> tuple[WorkerProfile, WorkerBehavior]:
        profile = WorkerProfile(worker_id=worker_id)
        if history:
            for t in history:
                profile.record_completion(t, TaskCategory.GENERIC, True)
        behavior = WorkerBehavior(min_time=2.0, max_time=10.0, quality=quality)
        return profile, behavior

    return _make
