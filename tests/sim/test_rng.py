"""Unit tests for named RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import (
    SPAWN_SENTINEL,
    STREAM_ARRIVALS,
    STREAM_MATCHER,
    RngRegistry,
    spawn_seeds,
)


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=5).stream("x").random(10)
        b = RngRegistry(seed=5).stream("x").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=5).stream("x").random(10)
        b = RngRegistry(seed=6).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=5)
        a = reg.stream("alpha").random(10)
        b = reg.stream("beta").random(10)
        assert not np.array_equal(a, b)

    def test_stream_unaffected_by_other_streams(self):
        """Requesting extra streams must not perturb an existing one."""
        solo = RngRegistry(seed=5)
        value_solo = solo.stream(STREAM_MATCHER).random(5)

        crowded = RngRegistry(seed=5)
        crowded.stream(STREAM_ARRIVALS).random(100)
        crowded.stream("unrelated").random(100)
        value_crowded = crowded.stream(STREAM_MATCHER).random(5)
        assert np.array_equal(value_solo, value_crowded)

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=5)
        assert reg.stream("x") is reg.stream("x")


class TestForking:
    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=5).fork(3).stream("x").random(5)
        b = RngRegistry(seed=5).fork(3).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(seed=5)
        child = parent.fork(0)
        assert not np.array_equal(
            parent.stream("x").random(5), child.stream("x").random(5)
        )

    def test_forks_differ_by_offset(self):
        parent = RngRegistry(seed=5)
        assert not np.array_equal(
            parent.fork(0).stream("x").random(5),
            parent.fork(1).stream("x").random(5),
        )

    def test_fork_zero_differs_from_root(self):
        """Regression: the arithmetic derivation mapped seed-0 fork(0) onto
        the root registry itself (0 * M + 0 == 0)."""
        root = RngRegistry(seed=0)
        child = root.fork(0)
        assert not np.array_equal(
            root.stream("x").random(8), child.stream("x").random(8)
        )

    def test_nested_forks_do_not_collide_with_flat_forks(self):
        """Regression: old derivation had fork(a).fork(b) == fork(a*M + b)."""
        m = 1_000_003
        root = RngRegistry(seed=0)
        nested = root.fork(2).fork(3)
        flat = root.fork(2 * m + 3)
        assert nested.lineage != flat.lineage
        assert not np.array_equal(
            nested.stream("x").random(8), flat.stream("x").random(8)
        )

    def test_lineage_is_threaded(self):
        reg = RngRegistry(seed=5)
        assert reg.lineage == ()
        assert reg.fork(2).lineage == (2,)
        assert reg.fork(2).fork(7).lineage == (2, 7)
        assert reg.fork(2).fork(7).seed == 5

    def test_root_spawn_key_unchanged(self):
        """Root registries must keep the historical name-bytes keying so
        single-process experiment baselines stay bit-identical."""
        reg = RngRegistry(seed=5)
        assert reg.spawn_key("ab") == (97, 98)
        seq = np.random.SeedSequence(entropy=5, spawn_key=(97, 98))
        expected = np.random.default_rng(seq).random(8)
        assert np.array_equal(reg.stream("ab").random(8), expected)

    def test_forked_spawn_keys_are_prefix_free(self):
        reg = RngRegistry(seed=5).fork(4)
        assert reg.spawn_key("ab") == (4, SPAWN_SENTINEL, 97, 98)

    def test_fork_offset_validation(self):
        reg = RngRegistry(seed=5)
        with pytest.raises(ValueError):
            reg.fork(-1)
        with pytest.raises(ValueError):
            reg.fork(SPAWN_SENTINEL)
        with pytest.raises(TypeError):
            reg.fork("zero")


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 4) == spawn_seeds(42, 4)

    def test_prefix_stable(self):
        """The first k children never change when n grows (shard resume)."""
        assert spawn_seeds(42, 8)[:3] == spawn_seeds(42, 3)

    def test_unique_and_distinct_across_seeds(self):
        a = spawn_seeds(42, 16)
        b = spawn_seeds(43, 16)
        assert len(set(a)) == 16
        assert set(a).isdisjoint(b)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            spawn_seeds(42, -1)


class TestValidation:
    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")

    def test_contains_and_iter(self):
        reg = RngRegistry(seed=1)
        assert "x" not in reg
        reg.stream("x")
        assert "x" in reg
        assert list(reg) == ["x"]
