"""Unit tests for named RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import STREAM_ARRIVALS, STREAM_MATCHER, RngRegistry


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=5).stream("x").random(10)
        b = RngRegistry(seed=5).stream("x").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=5).stream("x").random(10)
        b = RngRegistry(seed=6).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=5)
        a = reg.stream("alpha").random(10)
        b = reg.stream("beta").random(10)
        assert not np.array_equal(a, b)

    def test_stream_unaffected_by_other_streams(self):
        """Requesting extra streams must not perturb an existing one."""
        solo = RngRegistry(seed=5)
        value_solo = solo.stream(STREAM_MATCHER).random(5)

        crowded = RngRegistry(seed=5)
        crowded.stream(STREAM_ARRIVALS).random(100)
        crowded.stream("unrelated").random(100)
        value_crowded = crowded.stream(STREAM_MATCHER).random(5)
        assert np.array_equal(value_solo, value_crowded)

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=5)
        assert reg.stream("x") is reg.stream("x")


class TestForking:
    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=5).fork(3).stream("x").random(5)
        b = RngRegistry(seed=5).fork(3).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(seed=5)
        child = parent.fork(0)
        assert not np.array_equal(
            parent.stream("x").random(5), child.stream("x").random(5)
        )

    def test_forks_differ_by_offset(self):
        parent = RngRegistry(seed=5)
        assert not np.array_equal(
            parent.fork(0).stream("x").random(5),
            parent.fork(1).stream("x").random(5),
        )


class TestValidation:
    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")

    def test_contains_and_iter(self):
        reg = RngRegistry(seed=1)
        assert "x" not in reg
        reg.stream("x")
        assert "x" in reg
        assert list(reg) == ["x"]
