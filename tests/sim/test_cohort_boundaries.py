"""Boundary semantics of the batched event-cohort engine.

Pins the contracts the cohort refactor must preserve: ``until`` inclusivity
at exactly the head time, ``max_events`` accounting in the presence of
cancelled events (including mid-cohort budget caps), and stop/resume across
cohorts reproducing the sequential ``(time, priority, seq)`` dispatch order
bit for bit.  Also covers the allocation-hygiene pieces the loop leans on:
``pending_active``/``peek_time`` consistency, :class:`EventPool` recycling,
lazy ``EventRecord.payload_repr``, and the no-heap-mutation rule for cohort
handlers (``drain()`` during dispatch must refuse).
"""

import pytest

from repro.sim.engine import COMPACT_MIN_PENDING, Engine, SimulationError
from repro.sim.events import EventKind, EventPool, EventRecord


def _label(fired, name):
    return lambda event: fired.append(name)


class TestUntilBoundary:
    def test_until_equal_to_head_time_fires_head(self, engine):
        fired = []
        engine.schedule(5.0, EventKind.CALLBACK, _label(fired, "at"))
        engine.schedule(5.0 + 1e-9, EventKind.CALLBACK, _label(fired, "after"))
        stopped_at = engine.run(until=5.0)
        assert fired == ["at"]
        assert stopped_at == 5.0 and engine.now == 5.0
        engine.run()
        assert fired == ["at", "after"]

    def test_until_equal_to_cohort_time_fires_whole_cohort(self, engine):
        seen = []
        handler_calls = []

        def cb(event):  # pragma: no cover - routed through the handler
            raise AssertionError("cohort handler should intercept")

        engine.register_cohort_handler(
            cb, lambda now, events: handler_calls.append([e.payload for e in events])
        )
        for name in ("x", "y", "z"):
            engine.schedule(2.0, EventKind.CALLBACK, cb, payload=name)
        engine.schedule(2.0 + 1e-9, EventKind.CALLBACK, _label(seen, "later"))
        engine.run(until=2.0)
        assert handler_calls == [["x", "y", "z"]]
        assert seen == [] and engine.now == 2.0

    def test_until_past_drained_heap_advances_clock(self, engine):
        engine.schedule(1.0, EventKind.CALLBACK, lambda e: None)
        assert engine.run(until=10.0) == 10.0
        assert engine.now == 10.0


class TestMaxEventsWithCancellation:
    def test_cancelled_events_do_not_consume_budget(self, engine):
        fired = []
        events = [
            engine.schedule(1.0, EventKind.CALLBACK, _label(fired, f"e{i}"))
            for i in range(5)
        ]
        events[0].cancel()
        events[2].cancel()
        engine.run(max_events=2)
        assert fired == ["e1", "e3"]
        assert engine.dispatched == 2
        engine.run()
        assert fired == ["e1", "e3", "e4"]

    def test_budget_caps_cohort_and_remainder_resumes(self, engine):
        handler_calls = []

        def cb(event):  # pragma: no cover - routed through the handler
            raise AssertionError("cohort handler should intercept")

        engine.register_cohort_handler(
            cb, lambda now, events: handler_calls.append([e.payload for e in events])
        )
        for i in range(4):
            engine.schedule(1.0, EventKind.CALLBACK, cb, payload=i)
        engine.run(max_events=2)
        assert handler_calls == [[0, 1]]
        engine.run()
        assert handler_calls == [[0, 1], [2, 3]]

    def test_cancelled_cohort_member_skipped_inside_batch(self, engine):
        """An early member cancelling a later one is honoured mid-cohort."""
        handler_calls = []
        victim = {}

        def killer(event):
            victim["event"].cancel()

        def cb(event):  # pragma: no cover - routed through the handler
            raise AssertionError("cohort handler should intercept")

        engine.register_cohort_handler(
            cb, lambda now, events: handler_calls.append([e.payload for e in events])
        )
        # Same (time, priority): killer has seq before the cohort members.
        engine.schedule(1.0, EventKind.CALLBACK, killer, priority=7)
        engine.schedule(1.0, EventKind.CALLBACK, cb, payload="a", priority=7)
        victim["event"] = engine.schedule(
            1.0, EventKind.CALLBACK, cb, payload="b", priority=7
        )
        engine.schedule(1.0, EventKind.CALLBACK, cb, payload="c", priority=7)
        engine.run()
        assert handler_calls == [["a", "c"]]


class TestStopResumeAcrossCohorts:
    def test_stop_mid_cohort_resumes_in_sequential_order(self, engine):
        fired = []

        def make_stopper(event):
            fired.append("s")
            engine.stop()

        shared = lambda e: None  # noqa: E731
        calls = []
        engine.register_cohort_handler(
            shared, lambda now, events: calls.append([e.payload for e in events])
        )
        engine.schedule(1.0, EventKind.CALLBACK, make_stopper, priority=5)
        engine.schedule(1.0, EventKind.CALLBACK, shared, payload="a1", priority=5)
        engine.schedule(1.0, EventKind.CALLBACK, shared, payload="a2", priority=5)
        engine.run()
        # stop() fired before the batch: the whole tail went back on the heap.
        assert fired == ["s"] and calls == []
        engine.run()
        # The resumed run re-forms the cohort batch in seq order.
        assert calls == [["a1", "a2"]]

    def test_cohort_dispatch_order_matches_sequential(self):
        """Same schedule, with and without cohort handlers: same label order."""

        def drive(batched: bool):
            engine = Engine()
            fired = []
            shared = lambda e: fired.append(e.payload)  # noqa: E731
            if batched:
                engine.register_cohort_handler(
                    shared,
                    lambda now, events: fired.extend(e.payload for e in events),
                )
            other = lambda e: fired.append(e.payload)  # noqa: E731
            engine.schedule(1.0, EventKind.CALLBACK, shared, payload="a1", priority=5)
            engine.schedule(1.0, EventKind.CALLBACK, shared, payload="a2", priority=5)
            engine.schedule(1.0, EventKind.CALLBACK, other, payload="b1", priority=5)
            engine.schedule(1.0, EventKind.CALLBACK, shared, payload="a3", priority=5)
            engine.schedule(1.0, EventKind.CALLBACK, other, payload="b2", priority=3)
            engine.schedule(2.0, EventKind.CALLBACK, shared, payload="a4")
            engine.run()
            return fired

        assert drive(batched=True) == drive(batched=False)

    def test_same_time_higher_priority_event_preempts_cohort(self, engine):
        """A member scheduling a same-time higher-priority event yields to it."""
        fired = []
        shared = lambda e: None  # noqa: E731

        def handler(now, events):
            for event in events:
                fired.append(event.payload)
                if event.payload == "a1":
                    engine.schedule(
                        0.0, EventKind.CALLBACK, _label(fired, "urgent"), priority=0
                    )

        engine.register_cohort_handler(shared, handler)
        other = lambda e: fired.append(e.payload)  # noqa: E731
        engine.schedule(1.0, EventKind.CALLBACK, shared, payload="a1", priority=5)
        engine.schedule(1.0, EventKind.CALLBACK, other, payload="b1", priority=5)
        engine.schedule(1.0, EventKind.CALLBACK, other, payload="b2", priority=5)
        engine.run()
        # The handler call is atomic, but the *next* cohort member (b1) must
        # wait for the urgent event — exactly the sequential order.
        assert fired == ["a1", "urgent", "b1", "b2"]


class TestPendingActiveAndPeek:
    def test_pending_active_excludes_cancelled(self, engine):
        events = [
            engine.schedule(float(i + 1), EventKind.CALLBACK, lambda e: None)
            for i in range(3)
        ]
        assert engine.pending == 3 and engine.pending_active == 3
        engine.cancel(events[1])
        assert engine.pending == 3
        assert engine.pending_active == 2

    def test_peek_time_pops_cancelled_heads_consistently(self, engine):
        head = engine.schedule(1.0, EventKind.CALLBACK, lambda e: None)
        engine.schedule(2.0, EventKind.CALLBACK, lambda e: None)
        engine.cancel(head)
        assert engine.peek_time() == 2.0
        # The lazy pop removed the cancelled head: both counters agree now.
        assert engine.pending == engine.pending_active == 1

    def test_compaction_keeps_counters_consistent(self, engine):
        keep = [
            engine.schedule(float(i + 1), EventKind.CALLBACK, lambda e: None)
            for i in range(COMPACT_MIN_PENDING)
        ]
        doomed = [
            engine.schedule(1000.0 + i, EventKind.CALLBACK, lambda e: None)
            for i in range(COMPACT_MIN_PENDING + 8)
        ]
        for event in doomed:
            engine.cancel(event)
        # Compaction fired mid-loop: most cancelled entries were dropped
        # (the few cancelled *after* the rebuild legitimately remain).
        assert engine.pending < len(keep) + len(doomed)
        assert engine.pending_active == len(keep)
        assert engine.peek_time() == 1.0


class TestEventPool:
    def test_acquire_reuses_released_events_with_fresh_seq(self):
        pool = EventPool()
        first = pool.acquire(1.0, EventKind.CALLBACK, lambda e: None)
        assert pool.created == 1 and first.transient
        seq = first.seq
        pool.release(first)
        second = pool.acquire(2.0, EventKind.CALLBACK, lambda e: None, payload="p")
        assert second is first
        assert pool.reused == 1
        assert second.seq > seq
        assert not second.cancelled and second.payload == "p"

    def test_release_severs_payload_and_callback(self):
        pool = EventPool()
        event = pool.acquire(1.0, EventKind.CALLBACK, lambda e: None, payload=object())
        pool.release(event)
        assert event.payload is None
        with pytest.raises(RuntimeError, match="pool-released"):
            event.callback(event)

    def test_maxsize_bounds_free_list(self):
        pool = EventPool(maxsize=1)
        a = pool.acquire(1.0, EventKind.CALLBACK, lambda e: None)
        b = pool.acquire(1.0, EventKind.CALLBACK, lambda e: None)
        pool.release(a)
        pool.release(b)
        assert len(pool) == 1

    def test_engine_recycles_transient_events(self, engine):
        engine.schedule(1.0, EventKind.CALLBACK, lambda e: None, transient=True)
        engine.run()
        assert engine.event_pool.created == 1
        assert len(engine.event_pool) == 1
        engine.schedule(1.0, EventKind.CALLBACK, lambda e: None, transient=True)
        engine.run()
        assert engine.event_pool.reused == 1
        assert engine.event_pool.created == 1


class _CountingRepr:
    def __init__(self):
        self.calls = 0

    def __repr__(self):
        self.calls += 1
        return "x" * 200


class TestLazyPayloadRepr:
    def test_repr_deferred_until_first_access(self):
        payload = _CountingRepr()
        record = EventRecord(time=1.0, kind=EventKind.CALLBACK, seq=7, payload=payload)
        assert payload.calls == 0
        assert record.payload_repr == "x" * 80
        assert payload.calls == 1
        # Cached: a second read neither recomputes nor needs the payload.
        assert record.payload_repr == "x" * 80
        assert payload.calls == 1

    def test_access_drops_payload_reference(self):
        record = EventRecord(
            time=1.0, kind=EventKind.CALLBACK, seq=7, payload=_CountingRepr()
        )
        record.detach_payload()
        assert record._payload is None

    def test_none_payload_has_none_repr(self):
        record = EventRecord(time=1.0, kind=EventKind.CALLBACK, seq=7)
        assert record.payload_repr is None

    def test_explicit_repr_constructor_equivalence(self):
        lazy = EventRecord(time=1.0, kind=EventKind.CALLBACK, seq=7, payload="p")
        eager = EventRecord(
            time=1.0, kind=EventKind.CALLBACK, seq=7, payload_repr=repr("p")
        )
        assert lazy == eager
        assert hash(lazy) == hash(eager)


class TestCohortHandlerHeapContract:
    def test_drain_during_cohort_dispatch_refuses(self, engine):
        """Cohort handlers must not structurally mutate the engine heap."""
        shared = lambda e: None  # noqa: E731
        caught = {}

        def handler(now, events):
            try:
                list(engine.drain())
            except SimulationError as exc:
                caught["error"] = exc

        engine.register_cohort_handler(shared, handler)
        engine.schedule(1.0, EventKind.CALLBACK, shared)
        engine.schedule(1.0, EventKind.CALLBACK, shared)
        engine.run()
        assert "must not mutate" in str(caught["error"])

    def test_drain_during_single_event_handler_refuses(self, engine):
        shared = lambda e: None  # noqa: E731
        caught = {}

        def handler(now, events):
            try:
                list(engine.drain())
            except SimulationError as exc:
                caught["error"] = exc

        engine.register_cohort_handler(shared, handler)
        engine.schedule(1.0, EventKind.CALLBACK, shared)
        engine.run()
        assert "error" in caught
