"""Unit tests for event primitives."""

import pytest

from repro.sim.events import Event, EventKind


def _noop(event):
    pass


class TestEventOrdering:
    def test_orders_by_time(self):
        early = Event(time=1.0, kind=EventKind.CALLBACK, callback=_noop)
        late = Event(time=2.0, kind=EventKind.CALLBACK, callback=_noop)
        assert early < late
        assert not late < early

    def test_priority_breaks_time_ties(self):
        completion = Event(time=5.0, kind=EventKind.TASK_COMPLETION, callback=_noop)
        arrival = Event(time=5.0, kind=EventKind.TASK_ARRIVAL, callback=_noop)
        batch = Event(time=5.0, kind=EventKind.BATCH_TRIGGER, callback=_noop)
        assert completion < arrival < batch

    def test_sequence_breaks_full_ties(self):
        first = Event(time=5.0, kind=EventKind.CALLBACK, callback=_noop)
        second = Event(time=5.0, kind=EventKind.CALLBACK, callback=_noop)
        assert first < second
        assert first.seq < second.seq

    def test_explicit_priority_overrides_kind(self):
        urgent = Event(
            time=5.0, kind=EventKind.CALLBACK, callback=_noop, priority=0
        )
        normal = Event(time=5.0, kind=EventKind.TASK_COMPLETION, callback=_noop)
        assert urgent.sort_key() < normal.sort_key()


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Event(time=-1.0, kind=EventKind.CALLBACK, callback=_noop)

    def test_default_priority_from_kind(self):
        event = Event(time=0.0, kind=EventKind.BATCH_TRIGGER, callback=_noop)
        assert event.priority == int(EventKind.BATCH_TRIGGER)


class TestCancellation:
    def test_cancel_sets_flag(self):
        event = Event(time=0.0, kind=EventKind.CALLBACK, callback=_noop)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled


class TestEventKindPriorities:
    def test_completion_precedes_batch_events(self):
        """Completions must be visible before a same-instant batch decision."""
        assert EventKind.TASK_COMPLETION < EventKind.BATCH_TRIGGER
        assert EventKind.TASK_COMPLETION < EventKind.BATCH_COMPLETE

    def test_arrival_precedes_batch_trigger(self):
        assert EventKind.TASK_ARRIVAL < EventKind.BATCH_TRIGGER

    def test_reassignment_check_precedes_batch(self):
        """Withdrawals at time t should be seen by the batch at time t."""
        assert EventKind.REASSIGNMENT_CHECK < EventKind.BATCH_TRIGGER
