"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import EventKind


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule(3.0, EventKind.CALLBACK, lambda e: fired.append("c"))
        engine.schedule(1.0, EventKind.CALLBACK, lambda e: fired.append("a"))
        engine.schedule(2.0, EventKind.CALLBACK, lambda e: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        times = []
        engine.schedule(2.5, EventKind.CALLBACK, lambda e: times.append(engine.now))
        engine.run()
        assert times == [2.5]
        assert engine.now == 2.5

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError, match="past"):
            engine.schedule(-0.1, EventKind.CALLBACK, lambda e: None)

    def test_schedule_at_absolute_time(self, engine):
        fired = []
        engine.schedule_at(4.0, EventKind.CALLBACK, lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [4.0]

    def test_schedule_at_past_rejected(self, engine):
        engine.schedule(5.0, EventKind.CALLBACK, lambda e: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, EventKind.CALLBACK, lambda e: None)

    def test_zero_delay_fires_at_current_time(self, engine):
        fired = []

        def chain(event):
            if len(fired) < 3:
                fired.append(engine.now)
                engine.schedule(0.0, EventKind.CALLBACK, chain)

        engine.schedule(1.0, EventKind.CALLBACK, chain)
        engine.run()
        assert fired == [1.0, 1.0, 1.0]

    def test_payload_delivered(self, engine):
        received = []
        engine.schedule(
            1.0, EventKind.CALLBACK, lambda e: received.append(e.payload), payload=42
        )
        engine.run()
        assert received == [42]


class TestRunControl:
    def test_until_pauses_and_resumes(self, engine):
        fired = []
        engine.schedule(1.0, EventKind.CALLBACK, lambda e: fired.append(1))
        engine.schedule(5.0, EventKind.CALLBACK, lambda e: fired.append(5))
        end = engine.run(until=2.0)
        assert end == 2.0
        assert fired == [1]
        engine.run()
        assert fired == [1, 5]

    def test_until_advances_clock_when_heap_drains(self, engine):
        engine.schedule(1.0, EventKind.CALLBACK, lambda e: None)
        end = engine.run(until=10.0)
        assert end == 10.0
        assert engine.now == 10.0

    def test_max_events_bounds_dispatch(self, engine):
        for i in range(10):
            engine.schedule(float(i + 1), EventKind.CALLBACK, lambda e: None)
        engine.run(max_events=4)
        assert engine.dispatched == 4
        assert engine.pending == 6

    def test_stop_halts_loop(self, engine):
        fired = []

        def stopper(event):
            fired.append(engine.now)
            engine.stop()

        engine.schedule(1.0, EventKind.CALLBACK, stopper)
        engine.schedule(2.0, EventKind.CALLBACK, lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [1.0]

    def test_run_not_reentrant(self, engine):
        def reenter(event):
            with pytest.raises(SimulationError, match="reentrant"):
                engine.run()

        engine.schedule(1.0, EventKind.CALLBACK, reenter)
        engine.run()


class TestCancellation:
    def test_cancelled_event_skipped(self, engine):
        fired = []
        event = engine.schedule(1.0, EventKind.CALLBACK, lambda e: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []
        assert engine.dispatched == 0

    def test_peek_time_skips_cancelled(self, engine):
        first = engine.schedule(1.0, EventKind.CALLBACK, lambda e: None)
        engine.schedule(2.0, EventKind.CALLBACK, lambda e: None)
        first.cancel()
        assert engine.peek_time() == 2.0


class TestTracing:
    def test_trace_records_dispatches(self):
        engine = Engine(trace=True)
        engine.schedule(1.0, EventKind.TASK_ARRIVAL, lambda e: None, payload="t1")
        engine.schedule(2.0, EventKind.BATCH_TRIGGER, lambda e: None)
        engine.run()
        assert [r.kind for r in engine.records] == [
            EventKind.TASK_ARRIVAL,
            EventKind.BATCH_TRIGGER,
        ]
        assert engine.records[0].payload_repr == "'t1'"

    def test_max_records_caps_trace_buffer(self):
        engine = Engine(trace=True, max_records=2)
        for i in range(5):
            engine.schedule(float(i + 1), EventKind.CALLBACK, lambda e: None)
        engine.run()
        assert len(engine.records) == 2
        assert engine.dropped_records == 3
        # The ring keeps the most recent window.
        assert [r.time for r in engine.records] == [4.0, 5.0]

    def test_max_records_must_be_positive(self):
        with pytest.raises(ValueError):
            Engine(trace=True, max_records=0)

    def test_trace_sink_receives_records_without_buffering(self):
        seen = []
        engine = Engine(trace_sink=seen.append)
        engine.schedule(1.0, EventKind.TASK_ARRIVAL, lambda e: None)
        engine.run()
        assert len(seen) == 1 and seen[0].kind is EventKind.TASK_ARRIVAL
        # sink-only tracing leaves the in-memory buffer empty
        assert len(engine.records) == 0

    def test_same_time_priority_dispatch_order(self, engine):
        fired = []
        engine.schedule(1.0, EventKind.BATCH_TRIGGER, lambda e: fired.append("batch"))
        engine.schedule(1.0, EventKind.TASK_COMPLETION, lambda e: fired.append("done"))
        engine.schedule(1.0, EventKind.TASK_ARRIVAL, lambda e: fired.append("arrive"))
        engine.run()
        assert fired == ["done", "arrive", "batch"]


class TestDrain:
    def test_drain_yields_pending_non_cancelled(self, engine):
        keep = engine.schedule(1.0, EventKind.CALLBACK, lambda e: None)
        drop = engine.schedule(2.0, EventKind.CALLBACK, lambda e: None)
        drop.cancel()
        drained = list(engine.drain())
        assert drained == [keep]
        assert engine.pending == 0
