"""Unit tests for periodic and generator-driven processes."""

import pytest

from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess, PeriodicProcess


class TestPeriodicProcess:
    def test_fires_every_period(self, engine):
        times = []
        PeriodicProcess(engine, period=2.0, action=times.append)
        engine.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_custom_start(self, engine):
        times = []
        PeriodicProcess(engine, period=5.0, action=times.append, start=1.0)
        engine.run(until=12.0)
        assert times == [1.0, 6.0, 11.0]

    def test_stop_halts_firing(self, engine):
        times = []
        proc = PeriodicProcess(engine, period=1.0, action=times.append)
        engine.schedule(2.5, EventKind.CALLBACK, lambda e: proc.stop())
        engine.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_stop_from_within_action(self, engine):
        times = []
        proc = PeriodicProcess(engine, period=1.0, action=lambda t: (times.append(t), proc.stop()))
        engine.run(until=10.0)
        assert times == [1.0]

    def test_invalid_period_rejected(self, engine):
        with pytest.raises(ValueError, match="positive"):
            PeriodicProcess(engine, period=0.0, action=lambda t: None)


class TestGeneratorProcess:
    def test_delivers_payloads_with_gaps(self, engine):
        received = []

        def gaps():
            yield 1.0, "a"
            yield 2.0, "b"
            yield 0.5, "c"

        GeneratorProcess(engine, gaps(), lambda p: received.append((engine.now, p)))
        engine.run()
        assert received == [(1.0, "a"), (3.0, "b"), (3.5, "c")]

    def test_emitted_counter(self, engine):
        proc = GeneratorProcess(
            engine, iter([(1.0, i) for i in range(5)]), lambda p: None
        )
        engine.run()
        assert proc.emitted == 5

    def test_stop_halts_stream(self, engine):
        received = []
        proc = GeneratorProcess(
            engine, iter([(1.0, i) for i in range(10)]), received.append
        )
        engine.schedule(3.5, EventKind.CALLBACK, lambda e: proc.stop())
        engine.run()
        assert received == [0, 1, 2]

    def test_negative_gap_rejected(self, engine):
        GeneratorProcess(engine, iter([(1.0, "ok"), (-1.0, "bad")]), lambda p: None)
        with pytest.raises(ValueError, match="negative delay"):
            engine.run()

    def test_empty_generator_is_noop(self, engine):
        proc = GeneratorProcess(engine, iter([]), lambda p: None)
        engine.run()
        assert proc.emitted == 0
