"""Acceptance: the all-faults scenario end to end.

One of every fault kind strikes the same seeded workload for all three
techniques, with invariants I1-I7 audited every simulated second.  The run
must complete with zero violations, every policy must degrade gracefully
rather than collapse, and the paper's technique ordering — REACT >= Greedy
>= Traditional on on-time ratio — must survive the chaos.
"""

import pytest

from repro.chaos import FAULT_KINDS
from repro.experiments.chaos import (
    ChaosConfig,
    report_chaos,
    run_chaos_comparison,
    standard_schedule,
)

CONFIG = ChaosConfig(
    n_workers=60, arrival_rate=1.0, n_tasks=300, drain_time=300.0, seed=17
)


@pytest.fixture(scope="module")
def comparison():
    return run_chaos_comparison(CONFIG, schedule=standard_schedule(CONFIG))


class TestAllFaultsEndToEnd:
    def test_every_policy_survives_every_fault(self, comparison):
        # Getting results back at all means no InvariantViolation fired
        # during ~1000 per-second audits per run; double-check the audit
        # grids actually ran and all six faults actually struck.
        schedule = standard_schedule(CONFIG)
        for pair in comparison.values():
            for result in pair.values():
                assert result.invariant_audits >= int(CONFIG.horizon(schedule)) - 1
            faulted = pair["faulted"]
            assert faulted.summary["chaos_faults_injected"] == len(FAULT_KINDS)
            activated = {e.kind for e in faulted.fault_log if e.action == "activate"}
            assert len(activated) == len(FAULT_KINDS)

    def test_degradation_is_graceful(self, comparison):
        for name, pair in comparison.items():
            drop = pair["clean"].on_time_fraction - pair["faulted"].on_time_fraction
            assert drop <= 0.15, f"{name} collapsed under faults (drop {drop:.1%})"
            # Conservation under chaos: every task is accounted for.
            # (Traditional legitimately strands abandoned tasks in the
            # assigned pool forever — it has no Eq. 2 sweep and no expiry
            # pull-back; REACT and Greedy must drain completely.)
            summary = pair["faulted"].summary
            pending = (
                summary["pending_unassigned"]
                + summary["pending_assigned"]
                + summary["pending_deferred"]
            )
            terminal = summary["completed"] + summary["expired_unassigned"]
            assert terminal + pending == CONFIG.n_tasks
            if name != "traditional":
                assert pending == 0

    def test_technique_ordering_survives_the_faults(self, comparison):
        react = comparison["react"]["faulted"].on_time_fraction
        greedy = comparison["greedy"]["faulted"].on_time_fraction
        traditional = comparison["traditional"]["faulted"].on_time_fraction
        assert react >= greedy >= traditional

    def test_report_renders(self, comparison):
        text = report_chaos(comparison)
        for name in ("react", "greedy", "traditional"):
            assert name in text
        assert "on-time ratio under injected faults" in text
        assert "I1-I7" in text
