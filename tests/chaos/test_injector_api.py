"""Injector surface: arming rules, state queries, log filtering."""

import pytest

from repro.chaos import (
    BlackoutFault,
    FaultInjector,
    FaultSchedule,
    MatcherStallFault,
    SweepOutageFault,
)
from repro.platform.policies import react_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def server():
    engine = Engine()
    server = REACTServer(engine=engine, policy=react_policy(), rng=RngRegistry(seed=1))
    server.start()
    return server


def test_arm_twice_raises(server):
    injector = FaultInjector(server.engine, server, FaultSchedule())
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()


def test_any_active_tracks_windows(server):
    schedule = FaultSchedule(
        faults=(MatcherStallFault(start=5.0, duration=10.0, extra_latency=1.0),)
    )
    injector = FaultInjector(server.engine, server, schedule).arm()
    assert not injector.any_active
    server.engine.run(until=7.0)
    assert injector.any_active
    server.engine.run(until=20.0)
    assert not injector.any_active


def test_overlapping_suspensions_are_reference_counted(server):
    """The sweep only resumes when the *last* overlapping window closes."""
    schedule = FaultSchedule(
        faults=(
            SweepOutageFault(start=2.0, duration=10.0),
            BlackoutFault(start=6.0, duration=10.0),
        )
    )
    FaultInjector(server.engine, server, schedule).arm()
    server.engine.run(until=4.0)
    assert server.dynamic_assignment.suspended
    assert not server.scheduling.suspended  # outage alone spares the matcher
    server.engine.run(until=13.0)  # outage over, blackout still on
    assert server.dynamic_assignment.suspended
    assert server.scheduling.suspended
    server.engine.run(until=17.0)
    assert not server.dynamic_assignment.suspended
    assert not server.scheduling.suspended


def test_entries_filters_by_kind(server):
    schedule = FaultSchedule(
        faults=(
            SweepOutageFault(start=1.0, duration=2.0),
            MatcherStallFault(start=2.0, duration=2.0, extra_latency=1.0),
        )
    )
    injector = FaultInjector(server.engine, server, schedule).arm()
    server.engine.run(until=10.0)
    assert len(injector.entries()) == 4  # two activations + two deactivations
    outage_entries = injector.entries("sweep-outage")
    assert len(outage_entries) == 2
    assert {e.action for e in outage_entries} == {"activate", "deactivate"}


def test_inject_abandonment_needs_a_live_execution(server):
    assert server.inject_abandonment(task_id=99_999) is False
    assert server.live_execution(99_999, 1) is None
    assert server.metrics.chaos_abandonments == 0
