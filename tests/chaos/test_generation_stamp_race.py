"""Deterministic reproduction of the completion/withdrawal stamp race.

The bug: a worker who silently abandons task T1 is released at his sampled
walk-away time while T1 stays platform-side ASSIGNED (§IV-B semantics).
If the scheduler then hands him a newer task T2 *before* the Eq. 2 sweep
(or a blackout orphaning pass) finally withdraws T1, the withdrawal used
to blindly ``detach_task()`` + ``release()`` — kicking the worker off T2,
marking him available while T2 is still assigned to him (an I5 violation
one hop later), and letting the matcher double-book him.

The fix threads the withdrawn task's id through
``ProfilingComponent.record_withdrawal``; the worker's availability is
only touched when his profile still claims that very task.  Injected
matcher stalls widen the race window (T1 sits ASSIGNED longer while the
worker is already re-matched), so the integration half of this module
drives exactly that scenario under a 1-second invariant audit.
"""

from repro.chaos import AbandonmentWave, FaultSchedule, MatcherStallFault
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.model.worker import WorkerProfile
from repro.platform.policies import react_policy
from repro.platform.profiling import ProfilingComponent


def _abandoner_rematched_to_newer_task() -> tuple[ProfilingComponent, WorkerProfile]:
    """Worker 7: abandoned T1 (still ASSIGNED platform-side), now on T2."""
    component = ProfilingComponent()
    profile = WorkerProfile(worker_id=7)
    component.register(profile)
    component.record_assignment(7, task_id=1)
    profile.release()  # sampled walk-away: freed without returning a result
    component.record_assignment(7, task_id=2)
    return component, profile


def test_stale_withdrawal_leaves_worker_on_newer_task():
    component, profile = _abandoner_rematched_to_newer_task()

    # The Eq. 2 sweep finally pulls T1 back and *names* it.
    component.record_withdrawal(7, elapsed=42.0, release=True, task_id=1)

    assert profile.current_task == 2, "withdrawal of T1 must not touch T2"
    assert not profile.available, "worker is still executing T2"
    assert 42.0 in profile.execution_times, "censored hold is still recorded"


def test_current_task_withdrawal_still_releases():
    """The guard only filters *stale* withdrawals, not live ones."""
    component = ProfilingComponent()
    profile = WorkerProfile(worker_id=3)
    component.register(profile)
    component.record_assignment(3, task_id=9)

    component.record_withdrawal(3, elapsed=10.0, release=True, task_id=9)

    assert profile.current_task is None
    assert profile.available


def test_unguarded_withdrawal_reproduces_the_race():
    """Legacy ``task_id=None`` path documents the bug the guard fixes."""
    component, profile = _abandoner_rematched_to_newer_task()

    component.record_withdrawal(7, elapsed=42.0, release=True, task_id=None)

    # The worker was kicked off the task he is actually executing: he is
    # matchable again while T2 is still assigned to him.
    assert profile.current_task is None
    assert profile.available


def test_no_double_booking_under_stall_and_abandonment():
    """Integration: the widened race window stays invariant-clean.

    A matcher stall keeps withdrawn-but-assigned tasks in flight longer
    while an abandonment wave manufactures exactly the abandon -> re-match
    -> late-withdrawal interleaving; the run's 1-second audit grid checks
    I1-I7 (including the I3/I5 double-booking invariants) throughout.
    """
    config = ChaosConfig(
        n_workers=30, arrival_rate=0.8, n_tasks=120, drain_time=250.0, seed=31
    )
    schedule = FaultSchedule(
        faults=(
            MatcherStallFault(start=40.0, duration=80.0, extra_latency=20.0),
            AbandonmentWave(start=60.0, fraction=1.0),
            AbandonmentWave(start=90.0, fraction=1.0),
        ),
        seed=2,
    )
    result = run_chaos(react_policy(cycles=200), config, schedule=schedule)

    assert result.summary["chaos_abandonments"] > 0
    assert result.invariant_audits >= int(config.horizon(schedule)) - 1
    summary = result.summary
    assert summary["completed"] + summary["expired_unassigned"] == config.n_tasks
