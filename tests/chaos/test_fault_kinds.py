"""Per-fault-kind regression suite.

For every fault kind, an audited REACT run (invariants I1-I7 re-checked
every simulated second) under a single injected fault must

a) replay bit-identically from the same seeds,
b) never violate an invariant (the monitor raises mid-run if it does),
c) degrade the on-time ratio only within a per-kind bound versus the
   fault-free twin run at the same seed, and
d) fully recover: completions resume after the fault window and every
   task is accounted for by the end of the drain.
"""

import pytest

from repro.chaos import (
    AbandonmentWave,
    BlackoutFault,
    FaultSchedule,
    MatcherStallFault,
    NoShowFault,
    StaleProfileFault,
    SweepOutageFault,
)
from repro.experiments.chaos import ChaosConfig, ChaosRunResult, run_chaos
from repro.platform.policies import react_policy

CONFIG = ChaosConfig(
    n_workers=40, arrival_rate=0.8, n_tasks=160, drain_time=300.0, seed=23
)

FAULT_START = 60.0
FAULT_WINDOW = 40.0

#: (fault instance, max tolerated on-time drop vs. the fault-free twin).
#: The bounds are deliberately loose — they catch "the platform fell over",
#: not noise — but every one of them would trip if a fault kind started
#: losing tasks instead of degrading gracefully.
CASES = {
    "abandonment-wave": (
        AbandonmentWave(start=FAULT_START, fraction=0.75),
        0.30,
    ),
    "no-show": (
        NoShowFault(
            start=FAULT_START, duration=FAULT_WINDOW, probability=0.8, hold_time=20.0
        ),
        0.30,
    ),
    "stale-profile": (
        StaleProfileFault(start=FAULT_START, duration=FAULT_WINDOW, distortion=15.0),
        0.25,
    ),
    "matcher-stall": (
        MatcherStallFault(start=FAULT_START, duration=FAULT_WINDOW, extra_latency=25.0),
        0.30,
    ),
    "sweep-outage": (
        SweepOutageFault(start=FAULT_START, duration=FAULT_WINDOW),
        0.25,
    ),
    "blackout": (
        BlackoutFault(start=FAULT_START, duration=30.0),
        0.35,
    ),
}

_CACHE = {}


def _run(kind=None):
    """Cached audited run: ``kind=None`` is the fault-free twin."""
    if kind not in _CACHE:
        schedule = None
        if kind is not None:
            schedule = FaultSchedule(faults=(CASES[kind][0],), seed=5)
        _CACHE[kind] = run_chaos(react_policy(cycles=300), CONFIG, schedule=schedule)
    return _CACHE[kind]


@pytest.fixture(scope="module", params=sorted(CASES), ids=sorted(CASES))
def kind(request):
    return request.param


def test_clean_twin_baseline():
    clean = _run(None)
    assert clean.summary["received"] == CONFIG.n_tasks
    assert clean.on_time_fraction > 0.4
    assert clean.summary["chaos_faults_injected"] == 0


def test_replays_bit_identically(kind):
    first = _run(kind)
    schedule = FaultSchedule(faults=(CASES[kind][0],), seed=5)
    second = run_chaos(react_policy(cycles=300), CONFIG, schedule=schedule)
    assert first.summary == second.summary
    assert first.fault_log == second.fault_log
    assert first.outcomes == second.outcomes


def test_invariants_audited_throughout(kind):
    # run_chaos raises InvariantViolation mid-run on any breach; getting a
    # result back *is* the assertion.  Check the audit grid actually ran.
    result = _run(kind)
    horizon = CONFIG.horizon(FaultSchedule(faults=(CASES[kind][0],)))
    assert result.invariant_audits >= int(horizon) - 1


def test_fault_actually_fired(kind):
    result = _run(kind)
    fault = CASES[kind][0]
    activations = [e for e in result.fault_log if e.action == "activate"]
    assert [e.kind for e in activations] == [fault.kind]
    assert activations[0].time == fault.start
    if fault.duration > 0:
        deactivations = [e for e in result.fault_log if e.action == "deactivate"]
        assert [e.kind for e in deactivations] == [fault.kind]
        assert deactivations[0].time == fault.end
    # ...and left a trace in the metrics.
    expected_counter = {
        "abandonment-wave": "chaos_abandonments",
        "no-show": "chaos_no_shows",
        "stale-profile": "chaos_corrupted_observations",
        "matcher-stall": "matcher_stall_seconds",
        "sweep-outage": None,  # an outage *prevents* actions; see below
        "blackout": "blackout_orphaned",
    }[kind]
    if expected_counter is not None:
        assert result.summary[expected_counter] > 0


def test_degradation_is_bounded(kind):
    clean, faulted = _run(None), _run(kind)
    _, max_drop = CASES[kind]
    drop = clean.on_time_fraction - faulted.on_time_fraction
    assert drop <= max_drop, (
        f"{kind}: on-time dropped {drop:.1%} (clean "
        f"{clean.on_time_fraction:.1%} -> faulted {faulted.on_time_fraction:.1%})"
    )


def test_full_recovery_after_fault_window(kind):
    faulted = _run(kind)
    fault = CASES[kind][0]
    # Conservation: every submitted task reached a terminal state...
    summary = faulted.summary
    assert summary["received"] == CONFIG.n_tasks
    assert summary["completed"] + summary["expired_unassigned"] == CONFIG.n_tasks
    # ...nothing is stuck in a queue or the deferred pool...
    assert summary["pending_unassigned"] == 0
    assert summary["pending_assigned"] == 0
    assert summary["pending_deferred"] == 0
    # ...and the platform kept completing tasks *after* the window closed.
    post_fault = [
        completed_at
        for (_task_id, met, completed_at) in faulted.outcomes
        if met and completed_at is not None and completed_at > fault.end + 30.0
    ]
    assert post_fault, f"{kind}: no on-time completions after recovery"


def test_blackout_readopts_orphans():
    result = _run("blackout")
    summary = result.summary
    assert summary["blackout_orphaned"] > 0
    assert summary["readopted_tasks"] == summary["blackout_orphaned"]
    deactivation = [e for e in result.fault_log if e.action == "deactivate"][0]
    assert f"readopted={summary['readopted_tasks']}" in deactivation.detail
