"""Property-based chaos: random fault schedules never break the platform.

Hypothesis generates arbitrary (bounded) fault schedules — overlapping
windows, repeated kinds, extreme parameters — and the whole workload runs
under a 1-second invariant audit grid.  Any I1-I7 violation or metric
conservation failure raises mid-run and Hypothesis shrinks the schedule to
a minimal reproduction; the ``note`` output prints the exact schedule and
seeds so the failure replays deterministically.
"""

from hypothesis import HealthCheck, given, note, settings
from hypothesis import strategies as st

from repro.chaos import (
    AbandonmentWave,
    BlackoutFault,
    FaultSchedule,
    MatcherStallFault,
    NoShowFault,
    StaleProfileFault,
    SweepOutageFault,
)
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.platform.policies import react_policy

#: Small but non-trivial workload: enough tasks that every component does
#: real work, small enough that a dozen examples stay fast.
CONFIG = ChaosConfig(
    n_workers=20, arrival_rate=0.5, n_tasks=60, drain_time=250.0, seed=11
)

_STARTS = st.floats(min_value=5.0, max_value=150.0, allow_nan=False)
_WINDOWS = st.floats(min_value=1.0, max_value=40.0, allow_nan=False)

_FAULTS = st.one_of(
    st.builds(
        AbandonmentWave,
        start=_STARTS,
        fraction=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    ),
    st.builds(
        NoShowFault,
        start=_STARTS,
        duration=_WINDOWS,
        probability=st.floats(min_value=0.2, max_value=1.0, allow_nan=False),
        hold_time=st.floats(min_value=5.0, max_value=40.0, allow_nan=False),
    ),
    st.builds(
        StaleProfileFault,
        start=_STARTS,
        duration=_WINDOWS,
        distortion=st.floats(min_value=0.1, max_value=25.0, allow_nan=False),
    ),
    st.builds(
        MatcherStallFault,
        start=_STARTS,
        duration=_WINDOWS,
        extra_latency=st.floats(min_value=1.0, max_value=40.0, allow_nan=False),
    ),
    st.builds(SweepOutageFault, start=_STARTS, duration=_WINDOWS),
    st.builds(BlackoutFault, start=_STARTS, duration=_WINDOWS),
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,  # conftest's autouse id reset
    ],
)
@given(
    faults=st.lists(_FAULTS, min_size=1, max_size=4),
    injector_seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_fault_schedules_hold_every_invariant(faults, injector_seed):
    schedule = FaultSchedule(faults=tuple(faults), seed=injector_seed)
    note(f"workload seed={CONFIG.seed} schedule={schedule!r}")

    # The run audits I1-I7 every simulated second and checks metric
    # conservation at the end; any violation raises and Hypothesis shrinks.
    result = run_chaos(react_policy(cycles=200), CONFIG, schedule=schedule)

    assert result.invariant_audits >= int(CONFIG.horizon(schedule)) - 1
    summary = result.summary
    assert summary["received"] == CONFIG.n_tasks
    # Terminal accounting: nothing lost, nothing double-counted.  (The
    # drain may legitimately leave a task parked if a fault window reaches
    # past the arrival horizon, but it must still be *somewhere*.)
    terminal = summary["completed"] + summary["expired_unassigned"]
    pending = (
        summary["pending_unassigned"]
        + summary["pending_assigned"]
        + summary["pending_deferred"]
    )
    assert terminal + pending == CONFIG.n_tasks
    # Every activation got a matching deactivation for windowed faults.
    activations = sum(1 for e in result.fault_log if e.action == "activate")
    deactivations = sum(1 for e in result.fault_log if e.action == "deactivate")
    windowed = sum(1 for f in schedule if f.duration > 0)
    assert activations == len(schedule)
    assert deactivations == windowed
