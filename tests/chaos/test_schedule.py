"""Unit tests: fault dataclasses, schedules, and the resilience knobs."""

import pytest

from repro.chaos import (
    FAULT_KINDS,
    AbandonmentWave,
    BlackoutFault,
    FaultSchedule,
    MatcherStallFault,
    NoShowFault,
    StaleProfileFault,
    SweepOutageFault,
)
from repro.platform.resilience import ResilienceConfig


class TestFaults:
    def test_kind_names_are_stable(self):
        assert AbandonmentWave(start=0.0).kind == "abandonment-wave"
        assert NoShowFault(start=0.0).kind == "no-show"
        assert StaleProfileFault(start=0.0).kind == "stale-profile"
        assert MatcherStallFault(start=0.0).kind == "matcher-stall"
        assert SweepOutageFault(start=0.0).kind == "sweep-outage"
        assert BlackoutFault(start=0.0).kind == "blackout"

    def test_end_is_start_plus_duration(self):
        assert BlackoutFault(start=10.0, duration=5.0).end == 15.0
        assert AbandonmentWave(start=3.0).end == 3.0  # one-shot

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: AbandonmentWave(start=-1.0),
            lambda: AbandonmentWave(start=0.0, duration=-1.0),
            lambda: AbandonmentWave(start=0.0, fraction=1.5),
            lambda: NoShowFault(start=0.0, probability=-0.1),
            lambda: NoShowFault(start=0.0, hold_time=0.0),
            lambda: StaleProfileFault(start=0.0, distortion=0.0),
            lambda: MatcherStallFault(start=0.0, extra_latency=0.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_faults_are_values(self):
        """Frozen dataclasses: equal by content, usable as dict keys."""
        a = MatcherStallFault(start=5.0, duration=10.0, extra_latency=2.0)
        b = MatcherStallFault(start=5.0, duration=10.0, extra_latency=2.0)
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.start = 9.0


class TestFaultSchedule:
    def test_standard_contains_every_kind_once(self):
        schedule = FaultSchedule.standard()
        assert len(schedule) == len(FAULT_KINDS)
        for fault_type in FAULT_KINDS:
            assert len(schedule.of_kind(fault_type)) == 1

    def test_standard_windows_do_not_overlap(self):
        schedule = FaultSchedule.standard(first_start=50.0, spacing=100.0, window=30.0)
        ordered = sorted(schedule, key=lambda f: f.start)
        for earlier, later in zip(ordered, ordered[1:]):
            assert earlier.end <= later.start

    def test_horizon(self):
        schedule = FaultSchedule(
            faults=(BlackoutFault(start=10.0, duration=5.0), AbandonmentWave(start=40.0))
        )
        assert schedule.horizon == 40.0
        assert FaultSchedule().horizon == 0.0

    def test_rejects_non_faults(self):
        with pytest.raises(TypeError):
            FaultSchedule(faults=("not a fault",))

    def test_schedules_are_replayable_values(self):
        assert FaultSchedule.standard(seed=3) == FaultSchedule.standard(seed=3)
        assert FaultSchedule.standard(seed=3) != FaultSchedule.standard(seed=4)


class TestResilienceConfig:
    def test_backoff_delay_is_geometric_and_capped(self):
        config = ResilienceConfig(
            retry_backoff_base=2.0, retry_backoff_factor=3.0, retry_backoff_cap=25.0
        )
        assert config.backoff_delay(1) == 2.0
        assert config.backoff_delay(2) == 6.0
        assert config.backoff_delay(3) == 18.0
        assert config.backoff_delay(4) == 25.0  # capped

    def test_zero_base_disables_backoff(self):
        config = ResilienceConfig(retry_backoff_base=0.0)
        assert not config.backoff_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry_backoff_factor": 0.0},
            {"retry_backoff_cap": -1.0},
            {"max_reassignments": 0},
            {"latency_budget": 0.0},
            {"trip_after": 0},
            {"recover_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)
