"""Unit tests of :class:`repro.retainer.recruit.RetainerRecruiter`."""

import pytest

from repro.model.worker import WorkerProfile
from repro.platform.cost import RetainerCostConfig
from repro.platform.policies import react_policy
from repro.platform.server import REACTServer
from repro.retainer.pool import RetainerPool
from repro.retainer.recruit import RetainerRecruiter, charge_task_payments
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

from ..platform.helpers import reliable_behavior, submit


def build_bare_server(seed=3):
    """A started server with NO workers (the recruiter supplies them)."""
    from repro.platform.cost import ZeroCost

    engine = Engine()
    server = REACTServer(
        engine=engine,
        policy=react_policy(batch_threshold=1),
        rng=RngRegistry(seed=seed),
        cost_model=ZeroCost(),
    )
    server.start()
    return engine, server


def make_supply(n, start_id=0):
    behavior = reliable_behavior()
    return [(WorkerProfile(worker_id=start_id + i), behavior) for i in range(n)]


def make_recruiter(engine, server, n_supply=6, gaps=(), pool=None, patience=30.0):
    return RetainerRecruiter(
        engine,
        server,
        supply=make_supply(n_supply),
        gaps=iter(gaps),
        patience=patience,
        pool=pool,
    )


class TestArrivals:
    def test_gap_stream_drives_arrivals(self):
        engine, server = build_bare_server()
        recruiter = make_recruiter(
            engine, server, n_supply=3, gaps=[(1.0, 0), (1.0, 1), (1.0, 2)]
        )
        recruiter.start()
        engine.run(until=10.0)
        assert recruiter.stats.arrived == 3
        assert len(server.profiling) == 3
        # No pool: every arrival is an online walk-in.
        assert recruiter.stats.walk_ins == 3
        assert recruiter.stats.retained == 0

    def test_supply_exhaustion_stops_recruiting(self):
        engine, server = build_bare_server()
        recruiter = make_recruiter(
            engine, server, n_supply=2, gaps=[(1.0, i) for i in range(5)]
        )
        recruiter.start()
        engine.run(until=10.0)
        assert recruiter.stats.arrived == 2

    def test_cannot_start_twice(self):
        engine, server = build_bare_server()
        recruiter = make_recruiter(engine, server)
        recruiter.start()
        with pytest.raises(RuntimeError, match="already started"):
            recruiter.start()


class TestRetainerHolds:
    def test_prefill_holds_workers_offline(self):
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=3)
        recruiter = make_recruiter(engine, server, n_supply=6, pool=pool)
        recruiter.start(prefill=3)
        assert pool.held_count == 3
        assert recruiter.stats.retained == 3
        # Held workers are registered but invisible to the matcher.
        assert len(server.profiling) == 3
        assert server.profiling.available_workers() == []

    def test_prefill_without_pool_rejected(self):
        engine, server = build_bare_server()
        recruiter = make_recruiter(engine, server)
        with pytest.raises(ValueError, match="prefill"):
            recruiter.start(prefill=2)

    def test_arrivals_fill_pool_then_overflow_to_walkins(self):
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=2)
        recruiter = make_recruiter(
            engine, server, n_supply=4, gaps=[(1.0, i) for i in range(4)], pool=pool
        )
        recruiter.start()
        engine.run(until=10.0)
        assert pool.held_count == 2
        assert recruiter.stats.retained == 2
        assert recruiter.stats.walk_ins == 2
        assert len(server.profiling.available_workers()) == 2


class TestDemandRelease:
    def test_task_submission_releases_held_worker(self):
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=2, release_latency=0.5)
        recruiter = make_recruiter(engine, server, n_supply=2, pool=pool)
        recruiter.start(prefill=2)
        submit(server, engine)
        recruiter.notify_demand()
        assert pool.held_count == 1  # one dispatch in flight
        engine.run(until=20.0)
        # The released worker went online and completed the task.
        assert server.metrics.completed == 1

    def test_released_worker_returns_to_pool_when_idle(self):
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=2, release_latency=0.0)
        recruiter = make_recruiter(engine, server, n_supply=2, pool=pool)
        recruiter.start(prefill=2)
        submit(server, engine)
        recruiter.notify_demand()
        engine.run(until=60.0)
        assert server.metrics.completed == 1
        # After completion the sweep re-pools the idle worker.
        assert recruiter.stats.repooled >= 1
        assert pool.held_count == 2
        assert pool.outstanding_count == 0

    def test_release_sized_to_backlog(self):
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=5, release_latency=0.5)
        recruiter = make_recruiter(engine, server, n_supply=5, pool=pool)
        recruiter.start(prefill=5)
        for _ in range(3):
            submit(server, engine)
        recruiter.notify_demand()
        assert recruiter.stats.releases_requested == 3
        # Re-notifying for the same backlog must not over-release.
        recruiter.notify_demand()
        assert recruiter.stats.releases_requested == 3


class TestPatience:
    def test_idle_walkins_depart_after_patience(self):
        engine, server = build_bare_server()
        recruiter = make_recruiter(
            engine, server, n_supply=2, gaps=[(1.0, 0), (1.0, 1)], patience=5.0
        )
        recruiter.start()
        engine.run(until=30.0)
        assert recruiter.stats.patience_departures == 2
        assert len(server.profiling) == 0
        assert recruiter.managed_count == 0

    def test_busy_workers_do_not_depart(self):
        engine, server = build_bare_server()
        # Dawdling behaviour would hold the task; reliable workers finish in
        # 2-4 s, well under the 5 s patience, and the steady task flow keeps
        # resetting their idle clocks.
        recruiter = make_recruiter(
            engine, server, n_supply=1, gaps=[(0.5, 0)], patience=5.0
        )
        recruiter.start()

        def feed(now):
            submit(server, engine)

        from repro.sim.process import PeriodicProcess

        feeder = PeriodicProcess(engine, period=3.0, action=feed)
        engine.run(until=20.0)
        feeder.stop()
        assert recruiter.stats.patience_departures == 0
        assert server.metrics.completed >= 4

    def test_pooled_workers_never_depart(self):
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=2)
        recruiter = make_recruiter(
            engine, server, n_supply=2, pool=pool, patience=2.0
        )
        recruiter.start(prefill=2)
        engine.run(until=60.0)
        assert recruiter.stats.patience_departures == 0
        assert pool.held_count == 2


class TestChargeTaskPayments:
    def test_charges_completed_only(self):
        engine = Engine()
        pool = RetainerPool(
            engine, capacity=1, cost=RetainerCostConfig(task_payment=0.25)
        )
        total = charge_task_payments(
            pool, [(1, 3.0), (2, 5.0), (None, None), (3, None)]
        )
        assert total == pytest.approx(0.5)
        assert pool.ledger.assignments_paid == 2
        assert pool.ledger.account(1).assignment_cost == pytest.approx(0.25)


class TestValidationErrors:
    def test_rejects_bad_patience_and_sweep(self):
        engine, server = build_bare_server()
        with pytest.raises(ValueError, match="patience"):
            RetainerRecruiter(
                engine, server, supply=[], gaps=iter(()), patience=0.0
            )
        with pytest.raises(ValueError, match="sweep_interval"):
            RetainerRecruiter(
                engine, server, supply=[], gaps=iter(()), patience=1.0,
                sweep_interval=0.0,
            )
