"""Unit tests of adaptive retainer sizing (:mod:`repro.retainer.adaptive`)."""

import pytest

from repro.retainer.adaptive import AdaptivePoolSizer, EwmaRateEstimator
from repro.retainer.pool import RetainerPool
from repro.sim.engine import Engine
from repro.sim.events import EventKind

from .test_recruit import build_bare_server, make_recruiter


class TestEwmaRateEstimator:
    def test_rate_unknown_until_two_arrivals(self):
        est = EwmaRateEstimator()
        assert est.rate is None
        est.observe(0.0)
        assert est.rate is None
        est.observe(0.5)
        assert est.rate == pytest.approx(2.0)

    def test_constant_gaps_give_exact_rate(self):
        est = EwmaRateEstimator(alpha=0.3)
        for i in range(20):
            est.observe(i * 0.25)
        assert est.rate == pytest.approx(4.0)

    def test_tracks_a_ramp(self):
        est = EwmaRateEstimator(alpha=0.2)
        t = 0.0
        for _ in range(20):  # slow phase: 1 task/s
            est.observe(t)
            t += 1.0
        slow = est.rate
        assert slow == pytest.approx(1.0)
        for _ in range(60):  # fast phase: 10 tasks/s
            est.observe(t)
            t += 0.1
        fast = est.rate
        assert fast is not None and fast > slow
        assert fast == pytest.approx(10.0, rel=0.2)

    def test_non_monotone_stamps_clamped(self):
        est = EwmaRateEstimator()
        est.observe(5.0)
        est.observe(4.0)  # clock went backwards: gap clamps to 0
        assert est.rate is None or est.rate > 0

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            EwmaRateEstimator(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            EwmaRateEstimator(alpha=1.5)


class TestPoolResize:
    def test_growth_just_raises_capacity(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=2)
        pool.add_worker(1)
        pool.add_worker(2)
        assert pool.resize(5) == 0
        assert pool.capacity == 5
        assert pool.held_count == 2
        assert pool.add_worker(3)

    def test_shrink_evicts_newest_held_first(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=3)
        for wid in (1, 2, 3):
            pool.add_worker(wid)
        evicted = []
        assert pool.resize(1, on_evict=evicted.append) == 2
        assert evicted == [3, 2]  # LIFO: seniority of the longest-held wins
        assert pool.is_held(1) and pool.held_count == 1

    def test_outstanding_workers_never_evicted(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=2)
        pool.add_worker(1)
        pool.add_worker(2)
        pool.request(lambda wid, waited: None)  # dispatches longest-held (1)
        assert pool.outstanding_count == 1
        evicted = []
        assert pool.resize(1, on_evict=evicted.append) == 1
        assert evicted == [2]
        assert pool.outstanding_count == 1  # the dispatch is untouched
        assert pool.held_count == 0

    def test_invalid_capacity_rejected(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=2)
        with pytest.raises(ValueError, match="capacity"):
            pool.resize(0)


def make_sizer(engine, pool, **kwargs):
    kwargs.setdefault("wage_per_second", 0.01)
    kwargs.setdefault("wait_cost_per_second", 0.05)
    kwargs.setdefault("interval", 10.0)
    kwargs.setdefault("service_rate_fallback", 1.0)
    return AdaptivePoolSizer(engine, pool, EwmaRateEstimator(), **kwargs)


def feed_arrivals(engine, sizer, times):
    for t in times:
        engine.schedule_at(
            t, EventKind.CALLBACK, lambda _event: sizer.observe_arrival()
        )


class TestAdaptivePoolSizer:
    def test_no_retune_until_rate_known(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=4)
        sizer = make_sizer(engine, pool)
        engine.run(until=35.0)  # three wake-ups, zero arrivals observed
        sizer.stop()
        assert sizer.retunes == []
        assert pool.capacity == 4

    def test_ramping_trace_retunes_capacity_up_then_down(self):
        """The acceptance trace: lam ramps 0.5 -> 4 -> 0.5 tasks/s and the
        periodic retunes move c* with it (mu pinned at the fallback 1/s)."""
        engine = Engine()
        pool = RetainerPool(engine, capacity=1)
        sizer = make_sizer(engine, pool, interval=10.0)
        slow1 = [2.0 * (i + 1) for i in range(30)]  # gap 2 s until t=60
        fast = [60.0 + 0.25 * (i + 1) for i in range(480)]  # gap .25 s to t=180
        slow2 = [180.0 + 2.0 * (i + 1) for i in range(60)]  # gap 2 s to t=300
        feed_arrivals(engine, sizer, slow1 + fast + slow2)
        engine.run(until=301.0)
        sizer.stop()

        by_time = {r.at: r for r in sizer.retunes}
        low = by_time[60.0].capacity  # end of the slow phase
        peak = by_time[180.0].capacity  # end of the fast phase
        settled = by_time[300.0].capacity  # after the ramp-down
        assert low < peak, (low, peak)
        assert settled < peak, (settled, peak)
        # The EWMA tracked both legs of the ramp.
        assert by_time[180.0].arrival_rate == pytest.approx(4.0, rel=0.25)
        assert by_time[300.0].arrival_rate == pytest.approx(0.5, rel=0.25)
        # resize() was actually applied, not just recorded.
        assert pool.capacity == settled

    def test_shrink_hands_evicted_workers_to_callback(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=8)
        for wid in range(8):
            pool.add_worker(wid)
        evicted = []
        sizer = make_sizer(engine, pool, on_evict=evicted.append)
        # Trickle arrivals: lam = 0.1/s against mu = 1/s wants a tiny pool.
        feed_arrivals(engine, sizer, [10.0 * (i + 1) for i in range(5)])
        engine.run(until=51.0)
        sizer.stop()
        assert sizer.retunes, "expected at least one retune"
        assert pool.capacity < 8
        assert evicted, "shrinking a full pool must evict held workers"
        assert sizer.evictions == len(evicted)
        assert all(not pool.is_held(wid) for wid in evicted)

    def test_evicted_workers_rejoin_as_walkins(self):
        """End-to-end shrink path: sizer -> pool.resize -> recruiter
        release_to_walkin -> worker back online and matchable."""
        engine, server = build_bare_server()
        pool = RetainerPool(engine, capacity=6)
        recruiter = make_recruiter(
            engine, server, n_supply=6, pool=pool, patience=10_000.0
        )
        recruiter.start(prefill=6)
        assert server.profiling.available_workers() == []
        sizer = make_sizer(
            engine, pool, on_evict=recruiter.release_to_walkin
        )
        feed_arrivals(engine, sizer, [10.0 * (i + 1) for i in range(5)])
        engine.run(until=51.0)
        sizer.stop()
        recruiter.stop()
        assert pool.capacity < 6
        assert sizer.evictions > 0
        assert recruiter.stats.walk_ins == sizer.evictions
        # Evicted humans are online walk-ins now, visible to the matcher.
        assert len(server.profiling.available_workers()) == sizer.evictions

    def test_validation(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=2)
        with pytest.raises(ValueError, match="wage"):
            make_sizer(engine, pool, wage_per_second=0.0)
        with pytest.raises(ValueError, match="interval"):
            make_sizer(engine, pool, interval=0.0)
        with pytest.raises(ValueError, match="service_rate_fallback"):
            make_sizer(engine, pool, service_rate_fallback=-1.0)
        with pytest.raises(ValueError, match="min_capacity"):
            make_sizer(engine, pool, min_capacity=5, max_capacity=2)

    def test_min_capacity_clamp(self):
        engine = Engine()
        pool = RetainerPool(engine, capacity=4)
        sizer = make_sizer(engine, pool, min_capacity=3)
        # Near-zero demand would want c* = 1; the clamp holds it at 3.
        feed_arrivals(engine, sizer, [40.0 * (i + 1) for i in range(3)])
        engine.run(until=121.0)
        sizer.stop()
        assert sizer.retunes
        assert pool.capacity == 3
