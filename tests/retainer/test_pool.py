"""Unit tests of :class:`repro.retainer.pool.RetainerPool`."""

import pytest

from repro.obs.runtime import Observability
from repro.platform.cost import RetainerCostConfig
from repro.retainer.pool import RetainerPool
from repro.sim.engine import Engine
from repro.sim.events import EventKind


def make_pool(engine, capacity=3, latency=0.0, wage=0.01, payment=0.05, obs=None):
    return RetainerPool(
        engine,
        capacity=capacity,
        cost=RetainerCostConfig(wage_per_second=wage, task_payment=payment),
        release_latency=latency,
        observability=obs,
    )


class TestHolding:
    def test_add_until_full(self):
        engine = Engine()
        pool = make_pool(engine, capacity=2)
        assert pool.add_worker(1)
        assert pool.add_worker(2)
        assert not pool.add_worker(3)
        assert pool.held_count == 2
        assert pool.is_held(1) and pool.is_held(2) and not pool.is_held(3)

    def test_double_add_rejected(self):
        engine = Engine()
        pool = make_pool(engine)
        pool.add_worker(1)
        with pytest.raises(ValueError, match="already pooled"):
            pool.add_worker(1)

    def test_withdraw(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1)
        pool.add_worker(1)
        pool.withdraw_worker(1)
        assert pool.held_count == 0
        assert pool.add_worker(2)
        with pytest.raises(ValueError, match="not pooled"):
            pool.withdraw_worker(99)


class TestReleaseOrdering:
    def test_fifo_release(self):
        engine = Engine()
        pool = make_pool(engine, capacity=3)
        for wid in (10, 11, 12):
            pool.add_worker(wid)
        released = []
        for _ in range(3):
            pool.request(lambda wid, w: released.append(wid))
        engine.run()
        # Longest-held worker is dispatched first.
        assert released == [10, 11, 12]

    def test_queued_requests_fifo(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1)
        pool.add_worker(1)
        order = []
        pool.request(lambda wid, w: order.append(("a", wid)))
        pool.request(lambda wid, w: order.append(("b", wid)))
        pool.request(lambda wid, w: order.append(("c", wid)))
        assert pool.pending_requests == 2
        engine.run()
        assert order == [("a", 1)]
        pool.return_worker(1)
        engine.run()
        assert order == [("a", 1), ("b", 1)]
        pool.return_worker(1)
        engine.run()
        assert [label for label, _ in order] == ["a", "b", "c"]

    def test_release_latency_is_simulated_delay(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1, latency=2.5)
        pool.add_worker(1)
        times = []
        pool.request(lambda wid, waited: times.append((engine.now, waited)))
        engine.run()
        assert times == [(2.5, 2.5)]

    def test_queue_wait_counts_in_waited(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1, latency=1.0)
        waited = []
        pool.request(lambda wid, w: waited.append(w))  # queued at t=0, pool empty
        engine.schedule(3.0, EventKind.CALLBACK,
                        lambda e: pool.add_worker(7))
        engine.run()
        # Worker arrives at t=3, release latency 1 → dispatched at t=4.
        assert waited == [pytest.approx(4.0)]

    def test_new_worker_feeds_queued_demand(self):
        engine = Engine()
        pool = make_pool(engine, capacity=2)
        got = []
        pool.request(lambda wid, w: got.append(wid))
        assert pool.pending_requests == 1
        pool.add_worker(5)
        engine.run()
        assert got == [5]
        # The worker went straight to demand, never onto hold.
        assert pool.held_count == 0
        assert pool.outstanding_count == 1

    def test_return_feeds_queued_demand(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1)
        pool.add_worker(1)
        got = []
        pool.request(lambda wid, w: got.append(wid))
        engine.run()
        pool.request(lambda wid, w: got.append(wid))
        pool.return_worker(1)
        engine.run()
        assert got == [1, 1]

    def test_return_unknown_worker_rejected(self):
        engine = Engine()
        pool = make_pool(engine)
        with pytest.raises(ValueError, match="not released"):
            pool.return_worker(1)

    def test_cancel_requests(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1)
        pool.request(lambda wid, w: None)
        pool.request(lambda wid, w: None)
        assert pool.cancel_requests() == 2
        assert pool.pending_requests == 0


class TestLedgerAccrual:
    def test_hold_time_is_charged_on_dispatch(self):
        engine = Engine()
        pool = make_pool(engine, capacity=1, wage=0.1)
        pool.add_worker(1)
        engine.schedule(
            5.0,
            EventKind.CALLBACK,
            lambda e: pool.request(lambda wid, w: None),
        )
        engine.run()
        account = pool.ledger.account(1)
        assert account.retainer_seconds == pytest.approx(5.0)
        assert account.retainer_cost == pytest.approx(0.5)

    def test_settle_closes_open_holds_idempotently(self):
        engine = Engine()
        pool = make_pool(engine, capacity=2, wage=0.1)
        pool.add_worker(1)
        pool.add_worker(2)
        engine.schedule(
            10.0,
            EventKind.CALLBACK,
            lambda e: None,
        )
        engine.run()
        pool.settle()
        assert pool.ledger.retainer_seconds == pytest.approx(20.0)
        pool.settle()  # second settle at the same time adds nothing
        assert pool.ledger.retainer_seconds == pytest.approx(20.0)
        # Workers stay held after settling.
        assert pool.held_count == 2


class TestObservability:
    def test_instruments_track_pool_state(self):
        obs = Observability()
        engine = Engine()
        pool = make_pool(engine, capacity=2, latency=1.0, obs=obs)
        pool.add_worker(1)
        pool.add_worker(2)
        assert not pool.add_worker(3)  # rejected
        assert obs.registry.value("retainer_pool_held") == 2
        assert obs.registry.value("retainer_rejected_workers_total") == 1
        pool.request(lambda wid, w: None)
        engine.run()
        assert obs.registry.value("retainer_pool_held") == 1
        assert obs.registry.value("retainer_pool_outstanding") == 1
        assert obs.registry.value("retainer_releases_total") == 1
        hist = obs.registry.get("retainer_release_latency_seconds")
        assert hist is not None
        # One observation of exactly the release latency.
        count_samples = [
            s for s in hist.samples() if s.name.endswith("_count")
        ]
        assert count_samples and count_samples[0].value == 1

    def test_wage_counter_accrues(self):
        obs = Observability()
        engine = Engine()
        pool = make_pool(engine, capacity=1, wage=0.2, obs=obs)
        pool.add_worker(1)
        engine.schedule(
            4.0,
            EventKind.CALLBACK,
            lambda e: pool.request(lambda wid, w: None),
        )
        engine.run()
        assert obs.registry.value("retainer_wage_cost_total") == pytest.approx(0.8)


class TestValidation:
    def test_rejects_bad_capacity_and_latency(self):
        engine = Engine()
        with pytest.raises(ValueError, match="capacity"):
            RetainerPool(engine, capacity=0)
        with pytest.raises(ValueError, match="release_latency"):
            RetainerPool(engine, capacity=1, release_latency=-1.0)
