"""The analytic-validation tier: simulator vs closed-form M/M/c.

The headline gate of the retainer work (docs/RETAINER.md): the discrete
event simulator, driving :class:`repro.retainer.pool.RetainerPool` as a
plain M/M/c system, must land inside seeded 99% confidence intervals of
the closed-form Erlang-C predictions for mean wait, wait probability,
occupancy, and cost per task — on every point of a (lam, mu, c) grid.

Everything is deterministic in the seed (``spawn_seeds`` repetitions), so
a failure is a regression in the engine, the pool, or the maths — never
flakiness.  The ``slow_stats`` marker variants re-run the grid at many
more repetitions and a longer horizon; CI's ``validation-stats`` job
includes them, the tier-1 default run excludes them (see pyproject.toml).
"""

import pytest

from repro.retainer import DEFAULT_GRID, simulate_pool, validate_grid, validate_point
from repro.retainer.analytic import predict


def _format_failures(results):
    lines = []
    for v in results:
        p = v.predictions
        for c in v.checks:
            if not c.covered:
                lines.append(
                    f"(lam={p.arrival_rate}, mu={p.service_rate}, c={p.capacity}) "
                    f"{c.name}: analytic={c.analytic:.4f} not in "
                    f"[{c.ci_low:.4f}, {c.ci_high:.4f}] (sim={c.simulated_mean:.4f})"
                )
    return "\n".join(lines)


class TestGridAgreement:
    def test_default_grid_is_at_least_nine_points(self):
        assert len(DEFAULT_GRID) >= 9
        # Every point is stable (load strictly below capacity).
        for lam, mu, c in DEFAULT_GRID:
            assert lam / mu < c

    def test_simulation_matches_closed_form_on_grid(self):
        results = validate_grid(seed=0, reps=5, horizon=400.0, warmup=50.0)
        assert all(v.covered for v in results), _format_failures(results)

    def test_every_metric_is_checked(self):
        v = validate_point(2.0, 1.0, 3, seed=0, reps=3, horizon=200.0, warmup=25.0)
        names = {c.name for c in v.checks}
        assert names == {"mean_wait", "wait_probability", "occupancy", "cost_per_task"}


class TestLedgerCrossCheck:
    def test_ledger_agrees_with_idle_time_integral(self):
        # The pool's wage ledger is an *accounting* path, entirely separate
        # from the harness's busy-time integration.  Over a run with no
        # warmup window the two must agree to float precision.
        wage = 0.01
        sample = simulate_pool(
            2.0, 1.0, 3, seed=7, horizon=300.0, warmup=0.0, wage_per_second=wage
        )
        # Ledger covers [0, horizon]; with warmup=0 the harness idle
        # integral covers the same window.  (In this harness the ledger
        # carries wages only; task payments are charged by the experiment
        # driver, see repro.retainer.recruit.charge_task_payments.)
        harness_idle = 3 * 300.0 - (sample.occupancy * 3 * 300.0)
        assert sample.ledger_idle_seconds == pytest.approx(harness_idle, rel=1e-9)
        assert sample.ledger_total == pytest.approx(
            wage * sample.ledger_idle_seconds, rel=1e-12
        )

    def test_sample_is_deterministic_in_seed(self):
        a = simulate_pool(2.0, 1.0, 3, seed=11, horizon=100.0, warmup=10.0)
        b = simulate_pool(2.0, 1.0, 3, seed=11, horizon=100.0, warmup=10.0)
        assert a == b
        c = simulate_pool(2.0, 1.0, 3, seed=12, horizon=100.0, warmup=10.0)
        assert a != c


class TestValidatePointArguments:
    def test_rejects_single_rep(self):
        with pytest.raises(ValueError, match="reps"):
            validate_point(2.0, 1.0, 3, reps=1)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="warmup"):
            simulate_pool(2.0, 1.0, 3, seed=0, horizon=10.0, warmup=10.0)

    def test_relative_error_is_reported(self):
        v = validate_point(2.0, 1.0, 3, seed=0, reps=3, horizon=200.0, warmup=25.0)
        for c in v.checks:
            assert c.relative_error >= 0.0
        assert v.check("occupancy").analytic == pytest.approx(2.0 / 3.0)
        with pytest.raises(KeyError):
            v.check("nonexistent")


@pytest.mark.slow_stats
class TestHighRepetitionAgreement:
    """CI's validation-stats job: tighter statistics, longer horizons."""

    def test_grid_at_high_reps(self):
        results = validate_grid(seed=1, reps=10, horizon=2000.0, warmup=200.0)
        assert all(v.covered for v in results), _format_failures(results)

    def test_relative_errors_shrink_with_horizon(self):
        # Longer runs must track the closed form tightly on robust metrics
        # (occupancy and cost concentrate much faster than the wait mean).
        v = validate_point(2.0, 1.0, 3, seed=3, reps=10, horizon=4000.0, warmup=400.0)
        assert v.check("occupancy").relative_error < 0.02
        assert v.check("cost_per_task").relative_error < 0.02
        assert v.check("mean_wait").relative_error < 0.10

    def test_long_run_means_converge(self):
        import numpy as np

        from repro.sim.rng import spawn_seeds

        lam, mu, c = 2.0, 1.0, 3
        samples = [
            simulate_pool(lam, mu, c, seed=child, horizon=2000.0, warmup=200.0)
            for child in spawn_seeds(5, 12)
        ]
        analytic = predict(lam, mu, c)
        mean = float(np.mean([s.mean_wait for s in samples]))
        assert abs(mean - analytic.mean_wait) / analytic.mean_wait < 0.10
        wp = float(np.mean([s.wait_probability for s in samples]))
        assert abs(wp - analytic.wait_probability) < 0.05
