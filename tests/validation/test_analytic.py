"""Unit tests of the closed-form retainer model against queueing theory.

These pin the *analytic* side of the validation tier: textbook Erlang
values, the M/M/1 reduction, the stationary distribution as a first
principles cross-check of the Erlang-C recursion, and the optimal pool
size against brute-force minimisation.
"""

import math

import numpy as np
import pytest

from repro.retainer import analytic


class TestErlangB:
    def test_textbook_value(self):
        # Classic telephony example: a = 2 Erlangs, c = 5 lines.
        b = analytic.erlang_b(5, 2.0)
        # B = (2^5/5!) / sum_k 2^k/k!
        num = 2.0**5 / math.factorial(5)
        den = sum(2.0**k / math.factorial(k) for k in range(6))
        assert b == pytest.approx(num / den, rel=1e-12)

    def test_single_line(self):
        # B(1, a) = a / (1 + a).
        assert analytic.erlang_b(1, 3.0) == pytest.approx(0.75)

    def test_zero_load(self):
        assert analytic.erlang_b(4, 0.0) == 0.0

    def test_monotone_decreasing_in_capacity(self):
        values = [analytic.erlang_b(c, 5.0) for c in range(1, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_large_capacity_is_finite(self):
        # The recursion must not overflow where factorials would.
        b = analytic.erlang_b(2000, 1900.0)
        assert 0.0 < b < 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            analytic.erlang_b(0, 1.0)
        with pytest.raises(ValueError):
            analytic.erlang_b(3, -1.0)


class TestErlangC:
    def test_known_value(self):
        # a = 2, c = 3: C = 4/9 (standard M/M/3 worked example).
        assert analytic.erlang_c(3, 2.0) == pytest.approx(4.0 / 9.0, rel=1e-12)

    def test_mm1_reduction(self):
        # With one worker the wait probability is the occupancy rho.
        for rho in (0.1, 0.5, 0.9):
            assert analytic.erlang_c(1, rho) == pytest.approx(rho, rel=1e-12)

    def test_saturated_pool_always_waits(self):
        assert analytic.erlang_c(2, 2.0) == 1.0
        assert analytic.erlang_c(2, 5.0) == 1.0

    def test_exceeds_erlang_b(self):
        # Queueing (C) always beats blocking (B) for probability of delay.
        for c, a in ((2, 1.0), (5, 3.0), (10, 8.0)):
            assert analytic.erlang_c(c, a) > analytic.erlang_b(c, a)


class TestWaitingTime:
    def test_mm1_mean_wait(self):
        # M/M/1: E[W] = rho / (mu - lam).
        lam, mu = 0.5, 1.0
        expected = (lam / mu) / (mu - lam)
        assert analytic.mean_wait(lam, mu, 1) == pytest.approx(expected, rel=1e-12)

    def test_tail_at_zero_is_wait_probability(self):
        assert analytic.wait_tail(0.0, 2.0, 1.0, 3) == pytest.approx(
            analytic.erlang_c(3, 2.0)
        )

    def test_tail_integrates_to_mean(self):
        # E[W] = integral of P(W > t) dt.
        lam, mu, c = 2.0, 1.0, 3
        ts = np.linspace(0, 60, 200_000)
        tail = [analytic.wait_tail(t, lam, mu, c) for t in ts]
        integral = np.trapezoid(tail, ts)
        assert integral == pytest.approx(analytic.mean_wait(lam, mu, c), rel=1e-4)

    def test_unstable_raises(self):
        with pytest.raises(ValueError):
            analytic.mean_wait(3.0, 1.0, 3)

    def test_little_law(self):
        lam, mu, c = 4.0, 1.0, 6
        assert analytic.mean_queue_length(lam, mu, c) == pytest.approx(
            lam * analytic.mean_wait(lam, mu, c)
        )


class TestStationaryDistribution:
    def test_sums_to_below_one_with_tail(self):
        p = analytic.stationary_distribution(2.0, 1.0, 3, n_max=200)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_wait_probability_cross_check(self):
        # P(N >= c) from first principles must equal the Erlang-C recursion.
        lam, mu, c = 2.0, 1.0, 3
        p = analytic.stationary_distribution(lam, mu, c, n_max=400)
        assert p[c:].sum() == pytest.approx(
            analytic.erlang_c(c, lam / mu), abs=1e-9
        )

    def test_mean_busy_equals_offered_load(self):
        # E[min(N, c)] = a in steady state (PASTA / flow balance).
        lam, mu, c = 3.0, 1.5, 4
        p = analytic.stationary_distribution(lam, mu, c, n_max=400)
        busy = sum(min(n, c) * pn for n, pn in enumerate(p))
        assert busy == pytest.approx(lam / mu, abs=1e-9)

    def test_rejects_unstable(self):
        with pytest.raises(ValueError):
            analytic.stationary_distribution(2.0, 1.0, 2, n_max=50)


class TestCostPerTask:
    def test_components(self):
        lam, mu, c = 2.0, 1.0, 3
        wage, payment = 0.01, 0.05
        expected = wage * (c - lam / mu) / lam + payment
        got = analytic.cost_per_task(lam, mu, c, wage, payment)
        assert got == pytest.approx(expected)

    def test_increasing_in_capacity(self):
        costs = [
            analytic.cost_per_task(2.0, 1.0, c, 0.01, 0.05) for c in range(3, 10)
        ]
        assert all(a < b for a, b in zip(costs, costs[1:]))


class TestPredict:
    def test_bundles_everything(self):
        p = analytic.predict(2.0, 1.0, 3, wage_per_second=0.01, task_payment=0.05)
        assert p.offered_load == pytest.approx(2.0)
        assert p.occupancy == pytest.approx(2.0 / 3.0)
        assert p.wait_probability == pytest.approx(analytic.erlang_c(3, 2.0))
        assert p.mean_wait == pytest.approx(analytic.mean_wait(2.0, 1.0, 3))
        assert p.cost_per_task == pytest.approx(
            analytic.cost_per_task(2.0, 1.0, 3, 0.01, 0.05)
        )


class TestOptimalPoolSize:
    @staticmethod
    def _brute_force(lam, mu, wage, wait_cost, c_max=200):
        def j(c):
            return wage * (c - lam / mu) + wait_cost * lam * analytic.mean_wait(
                lam, mu, c
            )

        c_min = int(math.floor(lam / mu)) + 1
        return min(range(c_min, c_max), key=j)

    @pytest.mark.parametrize(
        "lam,mu,wage,wait_cost",
        [
            (2.0, 1.0, 0.01, 0.05),
            (2.0, 1.0, 0.001, 0.5),
            (10.0, 1.0, 0.01, 0.01),
            (0.5, 0.25, 0.02, 0.1),
            (9.375, 0.02, 0.01, 0.05),
        ],
    )
    def test_matches_brute_force(self, lam, mu, wage, wait_cost):
        got = analytic.optimal_pool_size(lam, mu, wage, wait_cost, c_max=2000)
        assert got == self._brute_force(lam, mu, wage, wait_cost, c_max=2000)

    def test_cheap_waiting_prefers_minimal_pool(self):
        # Free waiting: the optimum is the smallest stable pool.
        lam, mu = 2.0, 1.0
        assert analytic.optimal_pool_size(lam, mu, 0.01, 0.0) == 3

    def test_expensive_waiting_grows_pool(self):
        small = analytic.optimal_pool_size(2.0, 1.0, 0.01, 0.01)
        large = analytic.optimal_pool_size(2.0, 1.0, 0.01, 10.0)
        assert large > small
