"""Unit tests for the REACT WBGM matcher (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.matching.hungarian import HungarianMatcher
from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.graph.bipartite import BipartiteGraph


class TestParameters:
    def test_defaults(self):
        params = ReactParameters()
        assert params.cycles == 1000
        assert params.k_constant == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactParameters(cycles=-1)
        with pytest.raises(ValueError):
            ReactParameters(k_constant=0.0)
        with pytest.raises(ValueError):
            ReactParameters(adaptive_factor=0.0)

    def test_adaptive_budget(self):
        params = ReactParameters(cycles=100, adaptive_cycles=True, adaptive_factor=2.0)
        assert params.budget_for(n_edges=500) == 1000
        assert params.budget_for(n_edges=10) == 100  # floor at configured cycles

    def test_fixed_budget_ignores_edges(self):
        assert ReactParameters(cycles=100).budget_for(10**6) == 100


class TestCorrectness:
    def test_always_valid_matching(self, small_graph, rng):
        matcher = ReactMatcher(ReactParameters(cycles=2000))
        result = matcher.match(small_graph, rng)
        result.validate()

    def test_empty_graph(self):
        matcher = ReactMatcher()
        result = matcher.match(BipartiteGraph.empty(4, 4), np.random.default_rng(0))
        assert result.size == 0

    def test_single_edge_graph(self, rng):
        graph = BipartiteGraph.from_edges(1, 1, [(0, 0, 0.5)])
        result = ReactMatcher(ReactParameters(cycles=50)).match(graph, rng)
        assert result.size == 1

    def test_zero_cycles_empty_matching(self, small_graph, rng):
        result = ReactMatcher(ReactParameters(cycles=0)).match(small_graph, rng)
        assert result.size == 0

    def test_never_exceeds_optimal(self, rng):
        opt = HungarianMatcher()
        for trial in range(5):
            graph = BipartiteGraph.full(rng.random((12, 8)))
            best = opt.match(graph).total_weight
            got = ReactMatcher(ReactParameters(cycles=5000)).match(graph, rng)
            assert got.total_weight <= best + 1e-9

    def test_deterministic_given_rng(self, small_graph):
        matcher = ReactMatcher(ReactParameters(cycles=500))
        a = matcher.match(small_graph, np.random.default_rng(7))
        b = matcher.match(small_graph, np.random.default_rng(7))
        assert np.array_equal(a.edge_indices, b.edge_indices)


class TestConvergence:
    def test_more_cycles_better_output(self, rng):
        graph = BipartiteGraph.full(np.random.default_rng(3).random((50, 50)))
        low = ReactMatcher(ReactParameters(cycles=100)).match(
            graph, np.random.default_rng(1)
        )
        high = ReactMatcher(ReactParameters(cycles=20000)).match(
            graph, np.random.default_rng(1)
        )
        assert high.total_weight > low.total_weight

    def test_near_optimal_with_generous_budget(self, rng):
        graph = BipartiteGraph.full(np.random.default_rng(5).random((10, 10)))
        optimal = HungarianMatcher().match(graph).total_weight
        result = ReactMatcher(ReactParameters(cycles=50000)).match(
            graph, np.random.default_rng(2)
        )
        assert result.total_weight >= 0.85 * optimal

    def test_eviction_prefers_heavier_edge(self, rng):
        # Task 0 reachable by two workers; the heavy edge must win with a
        # large budget (eviction replaces the lighter one).
        graph = BipartiteGraph.from_edges(2, 1, [(0, 0, 0.1), (1, 0, 0.9)])
        result = ReactMatcher(ReactParameters(cycles=2000)).match(
            graph, np.random.default_rng(0)
        )
        assert result.size == 1
        assert result.pairs() == [(1, 0)]

    def test_stats_populated(self, small_graph, rng):
        result = ReactMatcher(ReactParameters(cycles=500)).match(small_graph, rng)
        stats = result.stats
        assert stats["accepted_add"] > 0
        total_moves = sum(stats.values())
        assert total_moves == 500
        assert result.cycles_used == 500


class TestZeroWeightEdges:
    def test_zero_weight_edges_allowed(self, rng):
        graph = BipartiteGraph.from_edges(2, 2, [(0, 0, 0.0), (1, 1, 0.0)])
        result = ReactMatcher(ReactParameters(cycles=200)).match(graph, rng)
        result.validate()  # must not crash or divide by zero

    def test_all_equal_weights_maximizes_cardinality(self, rng):
        graph = BipartiteGraph.full(np.full((6, 6), 0.5))
        result = ReactMatcher(ReactParameters(cycles=20000)).match(
            graph, np.random.default_rng(0)
        )
        assert result.size >= 5  # near-perfect matching
