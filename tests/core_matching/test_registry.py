"""Unit tests for the matcher registry."""

import pytest

from repro.core.matching.greedy import GreedyMatcher
from repro.core.matching.metropolis import MetropolisMatcher
from repro.core.matching.react import ReactMatcher
from repro.core.matching.registry import available_matchers, create_matcher, register


class TestCreate:
    def test_known_names(self):
        assert set(available_matchers()) == {
            "react", "metropolis", "greedy", "sorted-greedy", "hungarian", "uniform",
            "threshold",
        }

    def test_react_with_parameters(self):
        matcher = create_matcher("react", cycles=42, k_constant=2.0, adaptive_cycles=True)
        assert isinstance(matcher, ReactMatcher)
        assert matcher.params.cycles == 42
        assert matcher.params.k_constant == 2.0
        assert matcher.params.adaptive_cycles

    def test_metropolis_with_parameters(self):
        matcher = create_matcher("metropolis", cycles=7)
        assert isinstance(matcher, MetropolisMatcher)
        assert matcher.params.cycles == 7

    def test_defaults_when_unspecified(self):
        assert create_matcher("react").params.cycles == 1000

    def test_deterministic_matcher_rejects_cycles(self):
        with pytest.raises(ValueError, match="parameters"):
            create_matcher("greedy", cycles=10)

    def test_plain_deterministic(self):
        assert isinstance(create_matcher("greedy"), GreedyMatcher)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown matcher"):
            create_matcher("quantum")


class TestRegister:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("react", ReactMatcher)

    def test_custom_registration(self):
        class Custom(GreedyMatcher):
            name = "custom-test-matcher"

        register("custom-test-matcher", Custom)
        try:
            assert isinstance(create_matcher("custom-test-matcher"), Custom)
        finally:
            # keep the global registry clean for other tests
            from repro.core.matching import registry

            del registry._REGISTRY["custom-test-matcher"]
