"""Unit tests for the offline-optimal Hungarian matcher."""

import numpy as np
import pytest

from repro.core.matching.hungarian import HungarianMatcher
from repro.graph.bipartite import BipartiteGraph


class TestOptimality:
    def test_known_optimum(self, sparse_graph):
        # Optimal: (0,1)+(1,0)+(2,2) = 0.5+0.8+0.6 = 1.9
        result = HungarianMatcher().match(sparse_graph)
        result.validate()
        assert result.total_weight == pytest.approx(1.9)
        assert result.size == 3

    def test_beats_or_ties_every_heuristic(self, rng):
        from repro.core.matching.greedy import GreedyMatcher, SortedGreedyMatcher
        from repro.core.matching.react import ReactMatcher, ReactParameters

        for trial in range(5):
            graph = BipartiteGraph.full(rng.random((10, 12)))
            optimal = HungarianMatcher().match(graph).total_weight
            for heuristic in (
                GreedyMatcher(),
                SortedGreedyMatcher(),
                ReactMatcher(ReactParameters(cycles=3000)),
            ):
                got = heuristic.match(graph, np.random.default_rng(trial)).total_weight
                assert got <= optimal + 1e-9

    def test_rectangular_graphs(self, rng):
        tall = BipartiteGraph.full(rng.random((10, 3)))
        wide = BipartiteGraph.full(rng.random((3, 10)))
        assert HungarianMatcher().match(tall).size == 3
        assert HungarianMatcher().match(wide).size == 3

    def test_sparse_graph_phantoms_excluded(self):
        """Cells that are not edges must never appear in the matching."""
        graph = BipartiteGraph.from_edges(3, 3, [(0, 0, 0.1)])
        result = HungarianMatcher().match(graph)
        assert result.pairs() == [(0, 0)]

    def test_empty_graph(self):
        assert HungarianMatcher().match(BipartiteGraph.empty(3, 3)).size == 0

    def test_prefers_weight_over_cardinality(self):
        """Maximum-weight, not maximum-cardinality: a single 1.0 edge whose
        selection blocks two 0.45 edges should still lose to the pair."""
        edges = [(0, 0, 1.0), (0, 1, 0.45), (1, 0, 0.45)]
        graph = BipartiteGraph.from_edges(2, 2, edges)
        result = HungarianMatcher().match(graph)
        assert result.total_weight == pytest.approx(1.0)
        assert result.pairs() == [(0, 0)]
