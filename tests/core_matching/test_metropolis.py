"""Unit tests for the Metropolis matching baseline."""

import numpy as np
import pytest

from repro.core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.graph.bipartite import BipartiteGraph


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetropolisParameters(cycles=-1)
        with pytest.raises(ValueError):
            MetropolisParameters(k_constant=0.0)


class TestCorrectness:
    def test_valid_matching(self, small_graph, rng):
        result = MetropolisMatcher(MetropolisParameters(cycles=2000)).match(
            small_graph, rng
        )
        result.validate()

    def test_empty_graph(self):
        result = MetropolisMatcher().match(
            BipartiteGraph.empty(3, 3), np.random.default_rng(0)
        )
        assert result.size == 0

    def test_deterministic_given_rng(self, small_graph):
        matcher = MetropolisMatcher(MetropolisParameters(cycles=500))
        a = matcher.match(small_graph, np.random.default_rng(7))
        b = matcher.match(small_graph, np.random.default_rng(7))
        assert np.array_equal(a.edge_indices, b.edge_indices)

    def test_stats_cover_all_cycles(self, small_graph, rng):
        result = MetropolisMatcher(MetropolisParameters(cycles=777)).match(
            small_graph, rng
        )
        assert sum(result.stats.values()) == 777


class TestPaperComparison:
    def test_react_beats_metropolis_at_equal_cycles(self):
        """Fig. 4's headline: REACT > Metropolis for the same cycle budget,
        because Metropolis lacks the g(x')=0 eviction rule."""
        rng_graph = np.random.default_rng(11)
        wins = 0
        for trial in range(5):
            graph = BipartiteGraph.full(rng_graph.random((40, 40)))
            cycles = 1500
            react = ReactMatcher(ReactParameters(cycles=cycles)).match(
                graph, np.random.default_rng(trial)
            )
            metro = MetropolisMatcher(MetropolisParameters(cycles=cycles)).match(
                graph, np.random.default_rng(trial)
            )
            if react.total_weight > metro.total_weight:
                wins += 1
        assert wins >= 4  # dominant, allowing one unlucky draw

    def test_metropolis_cannot_displace_matched_edges(self):
        """A conflicting heavier edge is (almost surely) rejected, not
        evicted: with one matched light edge blocking a heavy one, the
        output keeps whichever got matched first unless a removal fires."""
        graph = BipartiteGraph.from_edges(2, 1, [(0, 0, 0.9), (1, 0, 0.05)])
        # K tiny -> removal probability exp(-w/K) ~ 0, collapse prob ~ 0:
        # whatever is matched first stays.
        matcher = MetropolisMatcher(MetropolisParameters(cycles=500, k_constant=0.001))
        result = matcher.match(graph, np.random.default_rng(1))
        assert result.size == 1


class TestCollapseBranch:
    def test_high_temperature_allows_collapse(self):
        """With K huge, conflicting additions are accepted (g(x')=0 branch),
        collapsing the matching to the single new edge."""
        graph = BipartiteGraph.full(np.random.default_rng(0).random((6, 6)))
        matcher = MetropolisMatcher(MetropolisParameters(cycles=2000, k_constant=1e9))
        result = matcher.match(graph, np.random.default_rng(3))
        result.validate()
        assert result.stats["collapses"] > 0
