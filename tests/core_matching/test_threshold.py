"""Unit tests for the threshold ("ratio") matching baseline."""

import numpy as np
import pytest

from repro.core.matching.greedy import SortedGreedyMatcher
from repro.core.matching.registry import create_matcher
from repro.core.matching.threshold import ThresholdMatcher
from repro.graph.bipartite import BipartiteGraph


class TestThreshold:
    def test_valid_matching(self, small_graph):
        ThresholdMatcher().match(small_graph).validate()

    def test_edges_below_bar_are_never_taken(self):
        edges = [(0, 0, 0.9), (1, 1, 0.4), (2, 2, 0.6)]
        graph = BipartiteGraph.from_edges(3, 3, edges)
        result = ThresholdMatcher(threshold=0.5).match(graph)
        assert result.task_assignment() == {0: 0, 2: 2}

    def test_prefers_quality_over_coverage(self):
        # A generalist (0.45 on both tasks) is below the bar; the specialist
        # takes his specialty and the other task goes unassigned instead of
        # to a weak match.
        edges = [(0, 0, 0.45), (0, 1, 0.45), (1, 0, 0.9)]
        graph = BipartiteGraph.from_edges(2, 2, edges)
        result = ThresholdMatcher(threshold=0.5).match(graph)
        assert result.task_assignment() == {0: 1}

    def test_zero_threshold_equals_sorted_greedy(self, rng):
        graph = BipartiteGraph.full(rng.random((20, 15)))
        ratio = ThresholdMatcher(threshold=0.0).match(graph)
        greedy = SortedGreedyMatcher().match(graph)
        assert ratio.task_assignment() == greedy.task_assignment()

    def test_empty_graph(self):
        assert ThresholdMatcher().match(BipartiteGraph.empty(2, 2)).size == 0

    def test_deterministic(self, small_graph):
        a = ThresholdMatcher().match(small_graph)
        b = ThresholdMatcher().match(small_graph)
        assert np.array_equal(a.edge_indices, b.edge_indices)

    @pytest.mark.parametrize("threshold", [-0.1, 1.1])
    def test_invalid_threshold(self, threshold):
        with pytest.raises(ValueError):
            ThresholdMatcher(threshold=threshold)

    def test_registry_creates_threshold(self):
        matcher = create_matcher("threshold")
        assert isinstance(matcher, ThresholdMatcher)
        assert matcher.name == "threshold"
