"""Seeded golden-equivalence suite for the optimized matching kernels.

The kernels layer (:mod:`repro.core.kernels`) promises *bit-identical*
behaviour to the seed implementations preserved in
:mod:`repro.core.kernels.reference`: same selected edges, same acceptance
counters, same RNG stream consumption.  These tests are the gate — any
optimized backend that diverges on a single cycle fails here.

The numba backend is exercised when numba is importable (one CI matrix cell
installs it); everywhere else those tests skip and the numba-absent fallback
path is asserted instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.deadline import DeadlineEstimator
from repro.core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.graph.bipartite import BipartiteGraph
from repro.model.worker import WorkerProfile
from repro.model.task import TaskCategory
from repro.stats.duration_models import EmpiricalFamily


def _edge_arrays(seed: int, n_workers: int, n_tasks: int, zero_frac: float):
    """Full bipartite edge arrays with a sprinkling of zero weights."""
    rng = np.random.default_rng(seed)
    weights = rng.random((n_workers, n_tasks))
    weights[rng.random((n_workers, n_tasks)) < zero_frac] = 0.0
    ew = np.repeat(np.arange(n_workers), n_tasks).astype(np.int64)
    et = np.tile(np.arange(n_tasks), n_workers).astype(np.int64)
    return ew, et, weights.ravel()


def _draws(seed: int, n_edges: int, cycles: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_edges, size=cycles), rng.random(cycles)


OPTIMIZED = [b for b in kernels.available_backends() if b != "reference"]


class TestKernelBitEquivalence:
    """Raw kernels: every optimized backend against the reference."""

    @pytest.mark.parametrize("backend", OPTIMIZED)
    @pytest.mark.parametrize("kernel_name", ["react_match", "metropolis_match"])
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_workers=st.integers(1, 30),
        n_tasks=st.integers(1, 30),
        cycles=st.integers(0, 1500),
        k_constant=st.sampled_from([0.05, 0.5, 5.0]),
        zero_frac=st.sampled_from([0.0, 0.1]),
    )
    def test_matches_reference(
        self, backend, kernel_name, seed, n_workers, n_tasks, cycles, k_constant, zero_frac
    ):
        kernel = getattr(kernels, kernel_name)
        ew, et, wt = _edge_arrays(seed, n_workers, n_tasks, zero_frac)
        picks, alphas = _draws(seed ^ 0x5EED, len(wt), cycles)
        args = (ew, et, wt, n_workers, n_tasks, picks, alphas, 1.0 / k_constant)
        ref_idx, ref_stats = kernel(*args, backend="reference")
        opt_idx, opt_stats = kernel(*args, backend=backend)
        assert np.array_equal(ref_idx, opt_idx)
        assert opt_idx.dtype == np.int64
        assert ref_stats == opt_stats

    @pytest.mark.parametrize("backend", OPTIMIZED)
    def test_golden_seeds(self, backend):
        """Fixed-seed anchor cases (cheap, always run, no shrinking)."""
        for seed, shape, cycles, k in [
            (7, (200, 200), 1000, 0.05),  # the perf-harness configuration
            (11, (1, 1), 50, 0.05),
            (13, (40, 3), 500, 0.5),
            (17, (3, 40), 500, 0.05),
        ]:
            ew, et, wt = _edge_arrays(seed, *shape, zero_frac=0.05)
            picks, alphas = _draws(seed + 1, len(wt), cycles)
            for kernel in (kernels.react_match, kernels.metropolis_match):
                args = (ew, et, wt, *shape, picks, alphas, 1.0 / k)
                ref = kernel(*args, backend="reference")
                opt = kernel(*args, backend=backend)
                assert np.array_equal(ref[0], opt[0])
                assert ref[1] == opt[1]


class TestWbgmAcceptLoop:
    """Full-loop kernel: cycle decisions AND the in-kernel assignment row."""

    @pytest.mark.parametrize("backend", OPTIMIZED)
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_workers=st.integers(1, 30),
        n_tasks=st.integers(1, 30),
        cycles=st.integers(0, 1500),
        k_constant=st.sampled_from([0.05, 0.5, 5.0]),
        zero_frac=st.sampled_from([0.0, 0.1]),
    )
    def test_matches_reference(
        self, backend, seed, n_workers, n_tasks, cycles, k_constant, zero_frac
    ):
        ew, et, wt = _edge_arrays(seed, n_workers, n_tasks, zero_frac)
        picks, alphas = _draws(seed ^ 0x5EED, len(wt), cycles)
        args = (ew, et, wt, n_workers, n_tasks, picks, alphas, 1.0 / k_constant)
        ref_idx, ref_row, ref_stats = kernels.wbgm_accept_loop(*args, backend="reference")
        opt_idx, opt_row, opt_stats = kernels.wbgm_accept_loop(*args, backend=backend)
        assert np.array_equal(ref_idx, opt_idx)
        assert np.array_equal(ref_row, opt_row)
        assert opt_row.dtype == np.int64
        assert ref_stats == opt_stats

    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_agrees_with_react_match(self, backend):
        """Same backend, same draws: the full loop IS react_match + row."""
        ew, et, wt = _edge_arrays(7, 200, 200, zero_frac=0.05)
        picks, alphas = _draws(8, len(wt), 1000)
        args = (ew, et, wt, 200, 200, picks, alphas, 1.0 / 0.05)
        plain_idx, plain_stats = kernels.react_match(*args, backend=backend)
        idx, row, stats = kernels.wbgm_accept_loop(*args, backend=backend)
        assert np.array_equal(plain_idx, idx)
        assert plain_stats == stats
        # The row must be exactly the dense form of the selected edges.
        expected = np.full(200, -1, dtype=np.int64)
        expected[et[idx]] = ew[idx]
        assert np.array_equal(row, expected)

    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_assignment_one_to_one(self, backend):
        ew, et, wt = _edge_arrays(13, 40, 25, zero_frac=0.1)
        picks, alphas = _draws(14, len(wt), 2000)
        _, row, _ = kernels.wbgm_accept_loop(
            ew, et, wt, 40, 25, picks, alphas, 20.0, backend=backend
        )
        matched = row[row >= 0]
        assert len(np.unique(matched)) == len(matched)  # workers distinct
        assert row.shape == (25,)

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="fortran"):
            kernels.wbgm_accept_loop(
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
                1,
                1,
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
                20.0,
                backend="fortran",
            )

    def test_matcher_result_carries_dense_row(self, rng):
        graph = BipartiteGraph.full(np.random.default_rng(3).random((25, 18)))
        result = ReactMatcher(ReactParameters(cycles=800)).match(graph, rng)
        assert result.task_worker is not None
        assert np.array_equal(result.task_assignment_dense(), result.task_worker)
        # Dict view agrees with the pair view derived from the edges.
        pairs = {int(t): int(w) for w, t in zip(result.workers, result.tasks)}
        assert result.task_assignment() == pairs
        result.validate()


class TestMatcherEquivalence:
    """Matcher level: same result AND same RNG stream consumption."""

    @pytest.mark.parametrize("backend", OPTIMIZED)
    @pytest.mark.parametrize(
        "make",
        [
            lambda b: ReactMatcher(ReactParameters(cycles=800), backend=b),
            lambda b: MetropolisMatcher(MetropolisParameters(cycles=800), backend=b),
        ],
        ids=["react", "metropolis"],
    )
    def test_same_result_and_rng_state(self, backend, make):
        graph = BipartiteGraph.full(np.random.default_rng(3).random((25, 18)))
        rng_ref = np.random.default_rng(42)
        rng_opt = np.random.default_rng(42)
        ref = make("reference").match(graph, rng_ref)
        opt = make(backend).match(graph, rng_opt)
        assert np.array_equal(ref.edge_indices, opt.edge_indices)
        assert ref.stats == opt.stats
        assert ref.cycles_used == opt.cycles_used
        # Both backends pre-draw the same bulk sequences, so the generators
        # must land in the exact same state — interleaving matcher calls
        # with other consumers of the stream stays reproducible.
        assert rng_ref.bit_generator.state == rng_opt.bit_generator.state

    def test_unknown_backend_rejected(self, small_graph, rng):
        matcher = ReactMatcher(ReactParameters(cycles=10), backend="fortran")
        with pytest.raises(KeyError, match="fortran"):
            matcher.match(small_graph, rng)


class TestBackendSelection:
    def test_reference_and_python_always_registered(self):
        assert {"reference", "python"} <= set(kernels.available_backends())

    def test_set_backend_round_trip(self):
        previous = kernels.set_backend("reference")
        try:
            assert kernels.active_backend() == "reference"
        finally:
            kernels.set_backend(previous)
        assert kernels.active_backend() == previous

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(KeyError):
            kernels.set_backend("cuda")

    @pytest.mark.skipif(
        kernels.NUMBA_AVAILABLE, reason="numba installed: fallback not in effect"
    )
    def test_numba_absent_falls_back_to_python(self):
        assert "numba" not in kernels.available_backends()
        assert kernels.active_backend() == "python"

    @pytest.mark.skipif(
        not kernels.NUMBA_AVAILABLE, reason="numba backend needs numba installed"
    )
    def test_numba_is_default_when_available(self):  # pragma: no cover
        assert "numba" in kernels.available_backends()
        assert kernels.active_backend() == "numba"


def _trained_worker(worker_id: int, history, seed: int = 0) -> WorkerProfile:
    profile = WorkerProfile(worker_id=worker_id)
    for t in history:
        profile.record_completion(float(t), TaskCategory.GENERIC, True)
    return profile


class TestDeadlineBatchEquivalence:
    """Vectorized Eq. (2)/(3) paths against the scalar implementations."""

    def _workers(self):
        rng = np.random.default_rng(5)
        workers = [
            _trained_worker(0, 5.0 + rng.pareto(2.0, 20) * 30.0),  # power law
            _trained_worker(1, []),  # untrained
            _trained_worker(2, [10.0, 10.0, 10.0, 10.0]),  # degenerate (alpha cap)
            _trained_worker(3, 1.0 + rng.pareto(1.2, 50) * 5.0),  # heavy tail
        ]
        return workers

    def test_eq3_matrix_matches_scalar(self):
        estimator = DeadlineEstimator(min_history=3)
        workers = self._workers()
        ttd = np.array([-5.0, 0.0, 1.0, 7.5, 40.0, 1e6])
        matrix = estimator.completion_probability_matrix(workers, ttd)
        assert matrix.shape == (len(workers), len(ttd))
        for i, worker in enumerate(workers):
            for j, t in enumerate(ttd):
                scalar = estimator.completion_probability(worker, float(t))
                assert matrix[i, j] == scalar.probability

    def test_eq3_matrix_empirical_family_matches_scalar(self):
        estimator = DeadlineEstimator(min_history=3, family=EmpiricalFamily())
        workers = self._workers()
        ttd = np.array([0.5, 12.0, 80.0])
        matrix = estimator.completion_probability_matrix(workers, ttd)
        for i, worker in enumerate(workers):
            for j, t in enumerate(ttd):
                assert matrix[i, j] == estimator.completion_probability(
                    worker, float(t)
                ).probability

    def test_eq2_batch_matches_scalar(self):
        estimator = DeadlineEstimator(min_history=3)
        workers = self._workers() * 3  # repeated workers share cached fits
        rng = np.random.default_rng(8)
        elapsed = rng.uniform(0.0, 30.0, size=len(workers))
        ttd = elapsed + rng.uniform(-5.0, 60.0, size=len(workers))  # some closed
        probs, trained = estimator.window_probability_batch(workers, elapsed, ttd)
        for i, worker in enumerate(workers):
            scalar = estimator.window_probability(worker, float(elapsed[i]), float(ttd[i]))
            assert probs[i] == scalar.probability
            assert trained[i] == scalar.trained

    def test_eq2_batch_rejects_bad_shapes(self):
        estimator = DeadlineEstimator()
        with pytest.raises(ValueError, match="arrays"):
            estimator.window_probability_batch(
                self._workers(), np.zeros(2), np.zeros(4)
            )
        with pytest.raises(ValueError, match="non-negative"):
            estimator.window_probability_batch(
                self._workers()[:1], np.array([-1.0]), np.array([5.0])
            )

    def test_empty_batch(self):
        probs, trained = DeadlineEstimator().window_probability_batch(
            [], np.empty(0), np.empty(0)
        )
        assert probs.shape == (0,)
        assert trained.shape == (0,)
