"""Unit tests for the Traditional/uniform matcher."""

import numpy as np
import pytest

from repro.core.matching.uniform import UniformMatcher
from repro.graph.bipartite import BipartiteGraph


class TestUniform:
    def test_valid_matching(self, small_graph, rng):
        UniformMatcher().match(small_graph, rng).validate()

    def test_full_graph_matches_all_tasks(self, rng):
        graph = BipartiteGraph.full(rng.random((30, 20)))
        assert UniformMatcher().match(graph, rng).size == 20

    def test_ignores_weights(self):
        """Uniform assignment must not systematically prefer heavy edges."""
        # Worker 0 has weight ~1 to the task, worker 1 weight ~0; uniform
        # matching should pick each roughly half the time.
        graph = BipartiteGraph.from_edges(2, 1, [(0, 0, 1.0), (1, 0, 0.0)])
        rng = np.random.default_rng(0)
        picks = [UniformMatcher().match(graph, rng).pairs()[0][0] for _ in range(400)]
        heavy_fraction = np.mean([p == 0 for p in picks])
        assert 0.4 < heavy_fraction < 0.6

    def test_respects_graph_structure(self, rng):
        """Only existing edges may be used."""
        graph = BipartiteGraph.from_edges(3, 3, [(0, 0, 0.5), (1, 1, 0.5)])
        result = UniformMatcher().match(graph, rng)
        assert set(result.pairs()) <= {(0, 0), (1, 1)}

    def test_empty_graph(self, rng):
        assert UniformMatcher().match(BipartiteGraph.empty(2, 2), rng).size == 0

    def test_task_with_no_edges_left_unmatched(self, rng):
        graph = BipartiteGraph.from_edges(2, 2, [(0, 0, 0.5)])
        result = UniformMatcher().match(graph, rng)
        assert result.task_assignment().keys() == {0}

    def test_deterministic_given_rng(self, small_graph):
        a = UniformMatcher().match(small_graph, np.random.default_rng(3))
        b = UniformMatcher().match(small_graph, np.random.default_rng(3))
        assert np.array_equal(a.edge_indices, b.edge_indices)
