"""Unit tests for the Greedy matchers."""

import numpy as np
import pytest

from repro.core.matching.greedy import GreedyMatcher, SortedGreedyMatcher
from repro.core.matching.hungarian import HungarianMatcher
from repro.graph.bipartite import BipartiteGraph


class TestGreedy:
    def test_valid_matching(self, small_graph):
        result = GreedyMatcher().match(small_graph)
        result.validate()

    def test_each_task_takes_best_free_worker(self):
        # Task order matters: task 0 takes worker 1 (0.8 > 0.9? no - 0.9 is
        # worker 0).  Check the exact paper semantics: task 0 scans its
        # edges, takes max weight -> worker 0 (0.9).  Task 1's only edge is
        # worker 0 (taken) -> unmatched.  Task 2 takes worker 1 (0.7).
        edges = [(0, 0, 0.9), (0, 1, 0.5), (1, 0, 0.8), (1, 2, 0.7), (2, 2, 0.6)]
        graph = BipartiteGraph.from_edges(3, 3, edges)
        result = GreedyMatcher().match(graph)
        assert result.task_assignment() == {0: 0, 2: 1}
        assert result.total_weight == pytest.approx(1.6)

    def test_near_optimal_on_full_graph(self, rng):
        """Fig. 4: 'the Greedy succeeds an almost optimal behavior because
        we use a full graph'."""
        graph = BipartiteGraph.full(rng.random((100, 60)))
        greedy = GreedyMatcher().match(graph).total_weight
        optimal = HungarianMatcher().match(graph).total_weight
        assert greedy >= 0.95 * optimal

    def test_full_graph_matches_all_tasks(self, rng):
        graph = BipartiteGraph.full(rng.random((30, 20)))
        assert GreedyMatcher().match(graph).size == 20

    def test_empty_graph(self):
        assert GreedyMatcher().match(BipartiteGraph.empty(2, 2)).size == 0

    def test_deterministic(self, small_graph):
        a = GreedyMatcher().match(small_graph)
        b = GreedyMatcher().match(small_graph)
        assert np.array_equal(a.edge_indices, b.edge_indices)

    def test_ties_broken_stably(self):
        graph = BipartiteGraph.from_edges(2, 1, [(0, 0, 0.5), (1, 0, 0.5)])
        a = GreedyMatcher().match(graph)
        b = GreedyMatcher().match(graph)
        assert a.pairs() == b.pairs()


class TestSortedGreedy:
    def test_valid_matching(self, small_graph):
        SortedGreedyMatcher().match(small_graph).validate()

    def test_takes_globally_heaviest_edge_first(self):
        # Global greedy prefers (0,0,0.9) before task order matters.
        edges = [(0, 1, 0.8), (0, 0, 0.9), (1, 1, 0.3)]
        graph = BipartiteGraph.from_edges(2, 2, edges)
        result = SortedGreedyMatcher().match(graph)
        assert result.task_assignment() == {0: 0, 1: 1}
        assert result.total_weight == pytest.approx(1.2)

    def test_at_least_half_optimal(self, rng):
        """Classic guarantee: global greedy is a 1/2-approximation."""
        for trial in range(5):
            graph = BipartiteGraph.full(rng.random((15, 15)))
            greedy = SortedGreedyMatcher().match(graph).total_weight
            optimal = HungarianMatcher().match(graph).total_weight
            assert greedy >= 0.5 * optimal

    def test_empty_graph(self):
        assert SortedGreedyMatcher().match(BipartiteGraph.empty(2, 2)).size == 0
