"""Unit tests for the matching-result container and validation."""

import numpy as np
import pytest

from repro.core.matching.base import MatchingError, MatchingResult, empty_result


class TestMatchingResult:
    def test_total_weight_and_size(self, sparse_graph):
        result = MatchingResult(
            graph=sparse_graph, edge_indices=np.array([0, 3]), algorithm="test"
        )
        # edges: (0,0,0.9) and (1,2,0.7)
        assert result.size == 2
        assert result.total_weight == pytest.approx(1.6)
        assert result.pairs() == [(0, 0), (1, 2)]
        assert result.task_assignment() == {0: 0, 2: 1}

    def test_validate_accepts_proper_matching(self, sparse_graph):
        result = MatchingResult(
            graph=sparse_graph, edge_indices=np.array([1, 2, 4]), algorithm="test"
        )
        # (0,1), (1,0), (2,2): all distinct workers and tasks
        result.validate()
        assert result.is_valid

    def test_validate_rejects_shared_worker(self, sparse_graph):
        result = MatchingResult(
            graph=sparse_graph, edge_indices=np.array([0, 1]), algorithm="test"
        )
        # (0,0) and (0,1) share worker 0
        with pytest.raises(MatchingError, match="worker"):
            result.validate()
        assert not result.is_valid

    def test_validate_rejects_shared_task(self, sparse_graph):
        result = MatchingResult(
            graph=sparse_graph, edge_indices=np.array([0, 2]), algorithm="test"
        )
        # (0,0) and (1,0) share task 0
        with pytest.raises(MatchingError, match="task"):
            result.validate()

    def test_duplicate_edge_rejected_at_construction(self, sparse_graph):
        with pytest.raises(MatchingError, match="duplicate"):
            MatchingResult(
                graph=sparse_graph, edge_indices=np.array([0, 0]), algorithm="test"
            )

    def test_out_of_range_edge_rejected(self, sparse_graph):
        with pytest.raises(MatchingError, match="range"):
            MatchingResult(
                graph=sparse_graph, edge_indices=np.array([99]), algorithm="test"
            )

    def test_empty_result(self, sparse_graph):
        result = empty_result(sparse_graph, "none")
        assert result.size == 0
        assert result.total_weight == 0.0
        result.validate()
