"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a refactor that silently
breaks one should fail the suite.  Each runs as a subprocess (exactly as a
user would invoke it) with a generous timeout; heavyweight examples are
exercised at their default scale, which keeps total runtime around a
minute.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "reward_pricing.py",
    "matching_comparison.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_matching_comparison_accepts_size_args():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "matching_comparison.py"), "50", "40"],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=EXAMPLES_DIR.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "50 workers x 40 tasks" in result.stdout


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python"), script.name
        assert '"""' in text.split("\n", 2)[1], f"{script.name} lacks a docstring"
