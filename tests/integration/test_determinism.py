"""Integration tests: bit-level reproducibility of the whole system."""

from repro.experiments.config import EndToEndConfig, MatchingSweepConfig
from repro.experiments.endtoend import run_endtoend
from repro.experiments.matching_bench import run_matching_sweep
from repro.platform.policies import react_policy

SMALL = EndToEndConfig(
    n_workers=50, arrival_rate=0.8, n_tasks=200, drain_time=400, seed=31
)


class TestEndToEndDeterminism:
    def test_identical_summaries(self):
        a = run_endtoend(react_policy(), SMALL)
        b = run_endtoend(react_policy(), SMALL)
        assert a.summary == b.summary

    def test_identical_series(self):
        a = run_endtoend(react_policy(), SMALL)
        b = run_endtoend(react_policy(), SMALL)
        assert a.deadline_series == b.deadline_series
        assert a.feedback_series == b.feedback_series

    def test_identical_outcome_stream(self):
        a = run_endtoend(react_policy(), SMALL)
        b = run_endtoend(react_policy(), SMALL)
        assert [o.task_id for o in a.metrics.outcomes] == [
            o.task_id for o in b.metrics.outcomes
        ]
        assert [o.final_worker for o in a.metrics.outcomes] == [
            o.final_worker for o in b.metrics.outcomes
        ]

    def test_different_seed_differs(self):
        a = run_endtoend(react_policy(), SMALL)
        b = run_endtoend(
            react_policy(),
            EndToEndConfig(
                n_workers=50, arrival_rate=0.8, n_tasks=200, drain_time=400, seed=32
            ),
        )
        # with different worker populations the realized outcomes diverge
        assert a.deadline_series != b.deadline_series


class TestMatchingSweepDeterminism:
    def test_identical_outputs(self):
        config = MatchingSweepConfig(
            n_workers=50, task_counts=(10, 30), cycles_settings=(200,)
        )
        a = run_matching_sweep(config)
        b = run_matching_sweep(config)
        assert [p.output_weight for p in a.points] == [
            p.output_weight for p in b.points
        ]
        assert [p.matched for p in a.points] == [p.matched for p in b.points]
