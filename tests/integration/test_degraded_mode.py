"""Degraded-mode scheduling: REACT -> Greedy fallback and back.

The :class:`DegradedModeController` is a latency circuit breaker: when the
Scheduling Component's simulated matcher latency exceeds the configured
budget for ``trip_after`` consecutive batches, the REACT WBGM matcher is
swapped for the cheap Greedy fallback; ``recover_after`` in-budget batches
swap the primary back.  These tests drive the breaker with an injected
matcher stall and assert it engages, disengages after the stall clears,
and that degraded REACT still beats the Traditional baseline on the same
faulted workload.
"""

from repro.chaos import FaultInjector, FaultSchedule, MatcherStallFault
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.model.task import Task, reset_task_ids
from repro.platform.cost import PaperCalibratedCost
from repro.platform.invariants import InvariantMonitor
from repro.platform.policies import react_policy, traditional_policy
from repro.platform.resilience import ResilienceConfig
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess
from repro.sim.rng import STREAM_TASKS, STREAM_WORKER_POPULATION, RngRegistry
from repro.workload.arrivals import deterministic_gaps
from repro.workload.population import PopulationConfig, generate_population

STALL = MatcherStallFault(start=50.0, duration=60.0, extra_latency=25.0)
SCHEDULE = FaultSchedule(faults=(STALL,), seed=3)
RESILIENCE = ResilienceConfig(
    retry_backoff_base=0.0,  # isolate the breaker from the backoff
    latency_budget=5.0,
    trip_after=1,
    recover_after=1,
)


def _stalled_run(n_tasks=150, rate=0.8, n_workers=40, seed=17):
    """Audited REACT run with resilience, under the stall; returns server."""
    reset_task_ids()
    engine = Engine()
    rng = RngRegistry(seed=seed)
    server = REACTServer(
        engine=engine,
        policy=react_policy(cycles=200),
        rng=rng,
        cost_model=PaperCalibratedCost(batch_overhead=0.1),
        resilience=RESILIENCE,
    )
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=n_workers)
    ):
        server.add_worker(profile, behavior)
    server.start()
    monitor = InvariantMonitor(engine, server, period=1.0).start()
    FaultInjector(engine, server, SCHEDULE).arm()

    task_rng = rng.stream(STREAM_TASKS)

    def submit(_):
        server.submit_task(
            Task(
                latitude=0.0,
                longitude=0.0,
                deadline=float(task_rng.uniform(60.0, 120.0)),
                submitted_at=engine.now,
            )
        )

    GeneratorProcess(
        engine, deterministic_gaps(rate, n_tasks), submit, kind=EventKind.TASK_ARRIVAL
    )
    engine.run(until=n_tasks / rate + 300.0)
    monitor.stop()
    server.stop()
    server.metrics.check_conservation()
    return server


def test_breaker_engages_and_disengages():
    server = _stalled_run()
    primary = server.degraded_mode._primary

    # Engaged at least once: every in-stall batch costs 25+ s against a
    # 5 s budget with trip_after=1.
    assert server.metrics.degraded_mode_switches >= 1
    assert server.metrics.degraded_mode_seconds > 0.0
    assert server.metrics.matcher_stall_seconds > 0.0

    # ...and fully disengaged once the stall cleared: the REACT WBGM
    # matcher is back in place and the breaker reads closed.
    assert server.degraded_mode.degraded is False
    assert server.scheduling.matcher is primary

    # Time spent degraded is bounded by the stall window plus the batches
    # needed to trip/recover — nowhere near the whole run.
    assert server.metrics.degraded_mode_seconds < 2 * STALL.duration


def test_degraded_react_still_beats_traditional():
    """Fallback trades match quality for drain speed, not correctness:
    even while degraded, REACT's on-time ratio stays at or above the
    Traditional baseline facing the same stall at the same seed."""
    config = ChaosConfig(
        n_workers=40,
        arrival_rate=0.8,
        n_tasks=150,
        drain_time=300.0,
        seed=17,
        resilience=RESILIENCE,
    )
    react_result = run_chaos(react_policy(cycles=200), config, schedule=SCHEDULE)
    traditional_result = run_chaos(traditional_policy(), config, schedule=SCHEDULE)

    assert react_result.summary["degraded_mode_switches"] >= 1
    # Traditional has no probabilistic model, hence no resilience layer.
    assert traditional_result.summary["degraded_mode_switches"] == 0
    assert react_result.on_time_fraction >= traditional_result.on_time_fraction
