"""Integration smoke tests: every figure's qualitative shape at small scale.

These are scaled-down versions of the benches in ``benchmarks/`` — they run
in seconds and assert the *direction* of every paper claim, so a regression
that silently flips a comparison fails the suite long before anyone reruns
the full harness.
"""

import pytest

from repro.experiments.config import (
    EndToEndConfig,
    MatchingSweepConfig,
    ScalabilityConfig,
)
from repro.experiments.endtoend import run_comparison
from repro.experiments.matching_bench import run_matching_sweep
from repro.experiments.scalability import run_scalability


@pytest.fixture(scope="module")
def matching():
    return run_matching_sweep(
        MatchingSweepConfig(
            n_workers=150, task_counts=(20, 150), cycles_settings=(300, 900), seed=3
        )
    )


@pytest.fixture(scope="module")
def endtoend():
    return run_comparison(
        EndToEndConfig(n_workers=120, arrival_rate=1.5, n_tasks=900, drain_time=400, seed=4)
    )


class TestFig3Shape:
    def test_greedy_model_time_dominates_at_scale(self, matching):
        """Fig. 3: greedy slowest at the full 1000-task point (model time)."""
        greedy = [p for p in matching.series("greedy") if p.n_tasks == 150][0]
        react = [p for p in matching.series("react", 300) if p.n_tasks == 150][0]
        # scaled by the paper model: greedy V*E vs react c*E
        assert greedy.model_seconds > react.model_seconds

    def test_randomized_time_scales_with_cycles(self, matching):
        slow = [p for p in matching.series("react", 900) if p.n_tasks == 150][0]
        fast = [p for p in matching.series("react", 300) if p.n_tasks == 150][0]
        assert slow.model_seconds > fast.model_seconds


class TestFig4Shape:
    def test_greedy_output_highest(self, matching):
        at_150 = {
            f"{p.algorithm}@{p.cycles}": p.output_weight
            for p in matching.points
            if p.n_tasks == 150
        }
        assert at_150["greedy@0"] >= max(
            v for k, v in at_150.items() if k != "greedy@0"
        )

    def test_react_above_metropolis(self, matching):
        at_150 = {
            (p.algorithm, p.cycles): p.output_weight
            for p in matching.points
            if p.n_tasks == 150
        }
        assert at_150[("react", 300)] > at_150[("metropolis", 300)]
        assert at_150[("react", 900)] > at_150[("metropolis", 900)]


class TestFig5To8Shapes:
    def test_fig5_react_most_on_time(self, endtoend):
        on_time = {k: v.summary["completed_on_time"] for k, v in endtoend.items()}
        assert on_time["react"] > on_time["traditional"]

    def test_fig6_react_most_positive_feedback(self, endtoend):
        fb = {k: v.summary["positive_feedbacks"] for k, v in endtoend.items()}
        assert fb["react"] > fb["traditional"]

    def test_fig7_traditional_worst_worker_time(self, endtoend):
        wt = {k: v.avg_worker_time for k, v in endtoend.items()}
        assert wt["traditional"] > wt["react"]
        assert wt["traditional"] > wt["greedy"]

    def test_fig8_react_beats_traditional_total_time(self, endtoend):
        """At this small scale greedy does not queue, so react and greedy
        are statistically tied; the paper-robust claim is react ≪
        traditional, with react within noise of the best.  The tie noise
        spans ~0-15% across seeds (measured over seeds 1-5), so the bound
        is 1.2× — tight enough to catch a queueing collapse, loose enough
        not to flip on a seed-path perturbation."""
        tt = {k: v.avg_total_time for k, v in endtoend.items()}
        assert tt["react"] < tt["traditional"]
        assert tt["react"] <= 1.2 * min(tt.values())


class TestFig9Fig10Shape:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_scalability(
            ScalabilityConfig(
                worker_sizes=(40, 120),
                rates=(0.5, 1.5),
                duration=250.0,
                drain_time=300.0,
                seed=6,
            )
        )

    def test_react_beats_traditional_everywhere(self, sweep):
        for r, t in zip(sweep.series("react"), sweep.series("traditional")):
            assert r.on_time_fraction > t.on_time_fraction
            assert r.positive_feedback_fraction > t.positive_feedback_fraction

    def test_fig10_proportional_to_fig9(self, sweep):
        """Fig. 10 'seems to be proportional to figure 9 for all approaches'."""
        for p in sweep.points:
            assert p.positive_feedback_fraction <= p.on_time_fraction + 1e-9
