"""Integration tests: the full event-driven pipeline at small scale."""

import pytest

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import run_endtoend
from repro.platform.policies import (
    greedy_policy,
    metropolis_policy,
    react_policy,
    traditional_policy,
)

CONFIG = EndToEndConfig(
    n_workers=80, arrival_rate=1.0, n_tasks=400, drain_time=400, seed=17
)


class TestPipelineSoundness:
    @pytest.mark.parametrize(
        "policy_factory",
        [react_policy, greedy_policy, traditional_policy, metropolis_policy],
        ids=["react", "greedy", "traditional", "metropolis"],
    )
    def test_every_policy_completes_cleanly(self, policy_factory):
        result = run_endtoend(policy_factory(), CONFIG)
        summary = result.summary
        assert summary["received"] == 400
        result.metrics.check_conservation()
        # majority of the workload is processed under this light load
        assert summary["completed"] >= 200

    def test_all_outcomes_have_consistent_fields(self):
        result = run_endtoend(react_policy(), CONFIG)
        for outcome in result.metrics.outcomes:
            if outcome.completed_at is None:
                assert not outcome.met_deadline
                assert not outcome.positive_feedback
                assert outcome.worker_time is None
            else:
                assert outcome.total_time is not None
                assert outcome.total_time >= (outcome.worker_time or 0.0) - 1e-9
                if outcome.met_deadline:
                    assert outcome.total_time <= outcome.deadline + 1e-9
                assert outcome.assignments >= 1

    def test_positive_feedback_implies_on_time(self):
        result = run_endtoend(react_policy(), CONFIG)
        for outcome in result.metrics.outcomes:
            if outcome.positive_feedback:
                assert outcome.met_deadline

    def test_reassigned_tasks_have_multiple_assignments(self):
        result = run_endtoend(react_policy(), CONFIG)
        reassigned = [o for o in result.metrics.outcomes if o.assignments >= 2]
        # with 50% dawdlers, rescues must occur under REACT
        assert len(reassigned) > 0

    def test_worker_histories_grow(self):
        result = run_endtoend(react_policy(), CONFIG)
        # metrics only; re-run with direct access to check profile state
        assert result.summary["completed"] > 0


class TestCrossPolicyInvariants:
    def test_same_arrival_trace_across_policies(self):
        """Identical seeds must expose identical workloads to all policies."""
        react = run_endtoend(react_policy(), CONFIG)
        trad = run_endtoend(traditional_policy(), CONFIG)
        assert react.summary["received"] == trad.summary["received"] == 400

    def test_greedy_with_monitor_reassigns(self):
        greedy = run_endtoend(greedy_policy(), CONFIG)
        assert greedy.summary["reassignments"] > 0
