"""Batched cohort dispatch never changes the bytes.

The cohort engine's contract (same as the PR 5 ``--parallel`` merge): the
batched dispatch path — cohort handlers for Eq. 2 monitor sweeps, periodic
batch triggers, and batch-result publication — must produce *identical
exported results* to plain one-event-at-a-time dispatch.  This test runs the
same seeded comparison twice, once with cohort-handler registration disabled
(every event takes the engine's per-event compatibility path, byte-identical
to the sequential engine) and once as shipped, then compares the exported
JSON/CSV bytes and the merged metrics snapshots sample for sample.
"""

from pathlib import Path

from repro.dist import TelemetrySpec, run_comparison_sharded
from repro.experiments.config import EndToEndConfig
from repro.experiments.export import export_endtoend
from repro.platform.policies import react_policy, traditional_policy
from repro.sim.engine import Engine

POLICIES = (react_policy(cycles=200), traditional_policy())

CONFIG = EndToEndConfig(
    n_workers=25, arrival_rate=0.5, n_tasks=40, drain_time=150.0
)


def _file_map(root: Path):
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def _run(tmp_path: Path, tag: str):
    out_dir = tmp_path / tag
    telemetry = TelemetrySpec(
        prefix="endtoend",
        trace_dir=str(out_dir / "trace"),
        metrics_dir=str(out_dir / "metrics"),
    )
    run = run_comparison_sharded(
        CONFIG, policies=POLICIES, parallel=1, telemetry=telemetry
    )
    export_dir = out_dir / "export"
    export_dir.mkdir(parents=True)
    export_endtoend(run.results, str(export_dir))
    return run, export_dir


def test_batched_dispatch_exports_identical_bytes(tmp_path, monkeypatch):
    batched, batched_dir = _run(tmp_path, "batched")

    # Disable cohort routing entirely: every registration becomes a no-op,
    # so dispatch falls back to the per-event path for all components.
    monkeypatch.setattr(
        Engine, "register_cohort_handler", lambda self, callback, handler: None
    )
    sequential, sequential_dir = _run(tmp_path, "sequential")

    for name in batched.results:
        assert (
            batched.results[name].summary == sequential.results[name].summary
        ), f"summary for {name} differs between batched and sequential dispatch"
    assert batched.snapshot is not None and sequential.snapshot is not None
    assert batched.snapshot.samples == sequential.snapshot.samples
    assert batched.snapshot.kinds == sequential.snapshot.kinds

    files_batched = _file_map(batched_dir)
    files_sequential = _file_map(sequential_dir)
    assert set(files_batched) == set(files_sequential)
    for name in files_batched:
        assert files_batched[name] == files_sequential[name], (
            f"{name} differs between batched and sequential dispatch"
        )
