"""End-to-end runs under continuous invariant auditing.

Every simulated second, every cross-component invariant (I1-I7) is
re-checked while the full workload — dawdlers, abandoners, Eq. 2 rescues,
expiry pull-backs, matcher latency — plays out.  This is the strongest
correctness statement the suite makes about the platform's state machine.
"""

import pytest

from repro.model.task import Task, TaskCategory
from repro.platform.cost import PaperCalibratedCost
from repro.platform.invariants import InvariantMonitor
from repro.platform.policies import greedy_policy, react_policy, traditional_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess
from repro.sim.rng import STREAM_TASKS, STREAM_WORKER_POPULATION, RngRegistry
from repro.workload.arrivals import deterministic_gaps
from repro.workload.population import PopulationConfig, generate_population


def _audited_run(policy, n_workers=40, rate=0.5, n_tasks=150, seed=19):
    engine = Engine()
    rng = RngRegistry(seed=seed)
    server = REACTServer(
        engine=engine,
        policy=policy,
        rng=rng,
        cost_model=PaperCalibratedCost(batch_overhead=0.1),
    )
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=n_workers)
    ):
        server.add_worker(profile, behavior)
    server.start()
    monitor = InvariantMonitor(engine, server, period=1.0).start()

    task_rng = rng.stream(STREAM_TASKS)

    def submit(_):
        server.submit_task(
            Task(
                latitude=0.0, longitude=0.0,
                deadline=float(task_rng.uniform(60.0, 120.0)),
                category=TaskCategory.GENERIC,
                submitted_at=engine.now,
            )
        )

    GeneratorProcess(
        engine, deterministic_gaps(rate, n_tasks), submit, kind=EventKind.TASK_ARRIVAL
    )
    engine.run(until=n_tasks / rate + 300.0)
    monitor.stop()
    server.stop()
    return server, monitor


@pytest.mark.parametrize(
    "policy_factory",
    [react_policy, greedy_policy, traditional_policy],
    ids=["react", "greedy", "traditional"],
)
def test_policy_holds_invariants_throughout(policy_factory):
    server, monitor = _audited_run(policy_factory())
    assert monitor.audits > 500  # audited every simulated second
    assert server.metrics.received == 150


def test_invariants_hold_under_churn():
    import numpy as np

    from repro.workload.churn import ChurnProcess

    engine = Engine()
    rng = RngRegistry(seed=7)
    server = REACTServer(engine=engine, policy=react_policy(), rng=rng)
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=25)
    ):
        server.add_worker(profile, behavior)
    server.start()
    monitor = InvariantMonitor(engine, server, period=1.0).start()
    churn = ChurnProcess(
        engine, server, np.random.default_rng(3),
        mean_session_s=40.0, mean_absence_s=20.0,
    )
    churn.track_all_workers()

    task_rng = rng.stream(STREAM_TASKS)

    def submit(_):
        server.submit_task(
            Task(latitude=0.0, longitude=0.0,
                 deadline=float(task_rng.uniform(60.0, 120.0)),
                 submitted_at=engine.now)
        )

    GeneratorProcess(
        engine, deterministic_gaps(0.4, 80), submit, kind=EventKind.TASK_ARRIVAL
    )
    engine.run(until=450.0)
    assert monitor.audits >= 450
    assert churn.stats.departures > 0
