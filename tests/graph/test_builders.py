"""Unit tests for assignment-graph construction (Eq. 3 pruning, cold start,
reward filtering)."""

import numpy as np
import pytest

from repro.core.deadline import DeadlineEstimator
from repro.core.weights import AccuracyWeight, ConstantWeight
from repro.graph.builders import MAX_WEIGHT, AssignmentGraphBuilder, RewardRange
from repro.model.task import Task, TaskCategory
from repro.model.worker import WorkerProfile


def _worker(worker_id, times=(), accuracy_positive=0, accuracy_total=0, assignments=None):
    profile = WorkerProfile(worker_id=worker_id)
    for t in times:
        positive = accuracy_positive > 0
        profile.record_completion(t, TaskCategory.GENERIC, positive)
        if positive:
            accuracy_positive -= 1
    profile.assignment_count = (
        assignments if assignments is not None else max(len(times), 0)
    )
    return profile


def _task(deadline=90.0, submitted_at=0.0, reward=0.05):
    return Task(
        latitude=0.0, longitude=0.0, deadline=deadline,
        reward=reward, submitted_at=submitted_at,
    )


@pytest.fixture
def builder():
    return AssignmentGraphBuilder(
        weight_function=AccuracyWeight(),
        estimator=DeadlineEstimator(min_history=3),
        edge_probability_bound=0.1,
    )


class TestColdStart:
    def test_cold_worker_connects_everywhere_with_max_weight(self, builder):
        cold = _worker(0, assignments=0)
        tasks = [_task(), _task()]
        graph, report = builder.build([cold], tasks, now=0.0)
        assert graph.n_edges == 2
        assert np.all(graph.edge_weights == MAX_WEIGHT)
        assert report.cold_start_workers == 1

    def test_cold_worker_skips_expired_tasks(self, builder):
        cold = _worker(0, assignments=0)
        expired = _task(deadline=10.0, submitted_at=0.0)
        graph, _ = builder.build([cold], [expired], now=50.0)
        assert graph.n_edges == 0

    def test_worker_with_z_assignments_not_cold(self, builder):
        # 3 assignments but no completions: no boost, accuracy weight 0.
        veteran = _worker(0, assignments=3)
        graph, report = builder.build([veteran], [_task()], now=0.0)
        assert report.cold_start_workers == 0
        # no history -> estimator says prob 1.0 -> edge kept at weight 0
        assert graph.n_edges == 1
        assert graph.edge_weights[0] == 0.0


class TestProbabilisticPruning:
    def test_slow_worker_pruned_for_tight_deadline(self, builder):
        # History of ~100 s holds; a 60 s deadline is hopeless (Eq. 3 = 0).
        slow = _worker(0, times=(100.0, 105.0, 110.0))
        graph, report = builder.build([slow], [_task(deadline=60.0)], now=0.0)
        assert graph.n_edges == 0
        assert report.pruned_by_probability >= 1

    def test_fast_worker_kept(self, builder):
        fast = _worker(0, times=(5.0, 6.0, 7.0), accuracy_positive=3)
        graph, _ = builder.build([fast], [_task(deadline=60.0)], now=0.0)
        assert graph.n_edges == 1

    def test_bound_zero_keeps_all_nonexpired(self):
        builder = AssignmentGraphBuilder(
            weight_function=ConstantWeight(0.5),
            estimator=DeadlineEstimator(min_history=3),
            edge_probability_bound=0.0,
        )
        slow = _worker(0, times=(100.0, 105.0, 110.0))
        graph, _ = builder.build([slow], [_task(deadline=60.0)], now=0.0)
        assert graph.n_edges == 1

    def test_expired_task_gets_no_edges_from_trained(self, builder):
        fast = _worker(0, times=(5.0, 6.0, 7.0))
        graph, _ = builder.build([fast], [_task(deadline=30.0)], now=60.0)
        assert graph.n_edges == 0


class TestWeights:
    def test_accuracy_weight_applied(self, builder):
        worker = _worker(0, times=(5.0, 6.0, 7.0), accuracy_positive=2)
        graph, _ = builder.build([worker], [_task()], now=0.0)
        assert graph.edge_weights[0] == pytest.approx(2 / 3)

    def test_weight_shape_mismatch_detected(self):
        class Broken(AccuracyWeight):
            def matrix(self, workers, tasks):
                return np.zeros((1, 1))

        builder = AssignmentGraphBuilder(
            weight_function=Broken(), estimator=DeadlineEstimator()
        )
        workers = [_worker(0, times=(5.0, 6.0, 7.0)), _worker(1, times=(5.0, 6.0, 7.0))]
        with pytest.raises(ValueError, match="shape"):
            builder.build(workers, [_task()], now=0.0)


class TestRewardFiltering:
    def test_reward_range_prunes_edges(self):
        builder = AssignmentGraphBuilder(
            weight_function=ConstantWeight(0.5),
            estimator=DeadlineEstimator(min_history=3),
            edge_probability_bound=0.0,
            reward_ranges={0: RewardRange(low=0.10, high=1.0)},
        )
        picky = _worker(0, times=(5.0, 6.0, 7.0))
        cheap = _task(reward=0.05)
        rich = _task(reward=0.20)
        graph, report = builder.build([picky], [cheap, rich], now=0.0)
        assert graph.n_edges == 1
        assert graph.edge_tasks[0] == 1
        assert report.pruned_by_reward == 1

    def test_workers_without_range_unaffected(self):
        builder = AssignmentGraphBuilder(
            weight_function=ConstantWeight(0.5),
            estimator=DeadlineEstimator(min_history=3),
            edge_probability_bound=0.0,
            reward_ranges={99: RewardRange(low=0.10)},
        )
        worker = _worker(0, times=(5.0, 6.0, 7.0))
        graph, _ = builder.build([worker], [_task(reward=0.01)], now=0.0)
        assert graph.n_edges == 1

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            RewardRange(low=0.5, high=0.1)


class TestMinWeightPruning:
    def test_low_quality_edges_pruned(self):
        builder = AssignmentGraphBuilder(
            weight_function=AccuracyWeight(),
            estimator=DeadlineEstimator(min_history=3),
            edge_probability_bound=0.0,
            min_weight=0.5,
        )
        bad = _worker(0, times=(5.0, 6.0, 7.0), accuracy_positive=0)
        good = _worker(1, times=(5.0, 6.0, 7.0), accuracy_positive=3)
        graph, report = builder.build([bad, good], [_task()], now=0.0)
        assert graph.n_edges == 1
        assert graph.edge_workers[0] == 1
        assert report.pruned_by_weight == 1

    def test_cold_start_survives_min_weight(self):
        builder = AssignmentGraphBuilder(
            weight_function=AccuracyWeight(),
            estimator=DeadlineEstimator(min_history=3),
            min_weight=0.5,
        )
        cold = _worker(0, assignments=0)
        graph, _ = builder.build([cold], [_task()], now=0.0)
        assert graph.n_edges == 1


class TestEmptyInputs:
    def test_no_workers(self, builder):
        graph, report = builder.build([], [_task()], now=0.0)
        assert graph.is_empty
        assert report.candidate_edges == 0

    def test_no_tasks(self, builder):
        graph, _ = builder.build([_worker(0)], [], now=0.0)
        assert graph.is_empty

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            AssignmentGraphBuilder(
                weight_function=AccuracyWeight(),
                estimator=DeadlineEstimator(),
                edge_probability_bound=1.5,
            )
