"""Unit tests for the bipartite graph structure."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph


class TestConstruction:
    def test_from_edges(self, sparse_graph):
        assert sparse_graph.n_workers == 3
        assert sparse_graph.n_tasks == 3
        assert sparse_graph.n_edges == 5

    def test_full_graph(self, rng):
        weights = rng.random((4, 6))
        graph = BipartiteGraph.full(weights)
        assert graph.n_edges == 24
        assert np.allclose(graph.to_dense(), weights)

    def test_from_dense_with_nan_holes(self):
        weights = np.array([[0.5, np.nan], [np.nan, 0.7]])
        graph = BipartiteGraph.from_dense(weights)
        assert graph.n_edges == 2
        assert set(zip(graph.edge_workers, graph.edge_tasks)) == {(0, 0), (1, 1)}

    def test_from_dense_with_mask(self):
        weights = np.ones((2, 2))
        mask = np.array([[True, False], [False, True]])
        graph = BipartiteGraph.from_dense(weights, mask=mask)
        assert graph.n_edges == 2

    def test_empty_graph(self):
        graph = BipartiteGraph.empty(5, 3)
        assert graph.is_empty
        assert graph.n_edges == 0
        assert graph.max_matching_upper_bound == 3

    def test_full_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            BipartiteGraph.full(np.array([[1.0, np.nan]]))


class TestValidation:
    def test_out_of_range_worker_rejected(self):
        with pytest.raises(ValueError, match="edge_workers"):
            BipartiteGraph.from_edges(2, 2, [(2, 0, 0.5)])

    def test_out_of_range_task_rejected(self):
        with pytest.raises(ValueError, match="edge_tasks"):
            BipartiteGraph.from_edges(2, 2, [(0, 2, 0.5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BipartiteGraph.from_edges(2, 2, [(0, 0, -0.5)])

    def test_non_finite_weight_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            BipartiteGraph.from_edges(2, 2, [(0, 0, float("inf"))])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BipartiteGraph.from_edges(2, 2, [(0, 0, 0.5), (0, 0, 0.6)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            BipartiteGraph(
                n_workers=2,
                n_tasks=2,
                edge_workers=np.array([0]),
                edge_tasks=np.array([0, 1]),
                edge_weights=np.array([0.5]),
            )

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mask"):
            BipartiteGraph.from_dense(np.ones((2, 2)), mask=np.ones((3, 2), dtype=bool))


class TestQueries:
    def test_degrees(self, sparse_graph):
        assert list(sparse_graph.worker_degrees()) == [2, 2, 1]
        assert list(sparse_graph.task_degrees()) == [2, 1, 2]

    def test_edges_of_task(self, sparse_graph):
        edges = sparse_graph.edges_of_task(0)
        workers = set(sparse_graph.edge_workers[edges])
        assert workers == {0, 1}

    def test_edges_of_worker(self, sparse_graph):
        edges = sparse_graph.edges_of_worker(1)
        tasks = set(sparse_graph.edge_tasks[edges])
        assert tasks == {0, 2}

    def test_to_dense_fill(self, sparse_graph):
        dense = sparse_graph.to_dense(fill=-1.0)
        assert dense[0, 0] == 0.9
        assert dense[2, 0] == -1.0


class TestPruning:
    def test_prune_below(self, sparse_graph):
        pruned = sparse_graph.prune_below(0.7)
        assert pruned.n_edges == 3
        assert pruned.edge_weights.min() >= 0.7
        # original untouched
        assert sparse_graph.n_edges == 5

    def test_with_pruned_edges_mask(self, sparse_graph):
        keep = sparse_graph.edge_weights > 0.85
        pruned = sparse_graph.with_pruned_edges(keep)
        assert pruned.n_edges == 1

    def test_prune_mask_shape_checked(self, sparse_graph):
        with pytest.raises(ValueError):
            sparse_graph.with_pruned_edges(np.array([True, False]))
