"""CSR adjacency caches and the trusted pruning path of BipartiteGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph


def _random_graph(seed: int, n_workers: int, n_tasks: int, density: float):
    rng = np.random.default_rng(seed)
    weights = rng.random((n_workers, n_tasks))
    mask = rng.random((n_workers, n_tasks)) < density
    return BipartiteGraph.from_dense(np.where(mask, weights, np.nan))


class TestCsrAdjacency:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_flatnonzero_scan(self, seed):
        graph = _random_graph(seed, 13, 9, density=0.4)
        for task in range(graph.n_tasks):
            expected = np.flatnonzero(graph.edge_tasks == task)
            assert np.array_equal(graph.edges_of_task(task), expected)
        for worker in range(graph.n_workers):
            expected = np.flatnonzero(graph.edge_workers == worker)
            assert np.array_equal(graph.edges_of_worker(worker), expected)

    def test_indices_ascending(self):
        graph = _random_graph(3, 20, 20, density=0.5)
        for task in range(graph.n_tasks):
            edges = graph.edges_of_task(task)
            assert np.all(np.diff(edges) > 0) or len(edges) <= 1

    def test_out_of_range_vertices_empty(self):
        graph = _random_graph(0, 4, 4, density=1.0)
        for bad in (-1, 4, 100):
            assert graph.edges_of_task(bad).size == 0
            assert graph.edges_of_worker(bad).size == 0
            assert graph.edges_of_task(bad).dtype == np.int64

    def test_empty_graph(self):
        graph = BipartiteGraph.empty(3, 5)
        assert graph.edges_of_task(2).size == 0
        assert graph.edges_of_worker(0).size == 0

    def test_isolated_vertices(self):
        graph = BipartiteGraph.from_edges(4, 4, [(1, 2, 0.5)])
        assert graph.edges_of_worker(0).size == 0
        assert np.array_equal(graph.edges_of_worker(1), [0])
        assert np.array_equal(graph.edges_of_task(2), [0])
        assert graph.edges_of_task(3).size == 0


class TestDegreeCaches:
    def test_values_match_bincount(self):
        graph = _random_graph(7, 11, 6, density=0.6)
        assert np.array_equal(
            graph.worker_degrees(), np.bincount(graph.edge_workers, minlength=11)
        )
        assert np.array_equal(
            graph.task_degrees(), np.bincount(graph.edge_tasks, minlength=6)
        )

    def test_returns_fresh_copies(self):
        graph = _random_graph(7, 8, 8, density=0.5)
        first = graph.worker_degrees()
        first[:] = -1
        assert np.array_equal(
            graph.worker_degrees(), np.bincount(graph.edge_workers, minlength=8)
        )


class TestTrustedPruning:
    def test_pruned_graph_revalidates_cleanly(self):
        graph = _random_graph(1, 15, 15, density=0.7)
        pruned = graph.prune_below(0.5)
        # Round-trip through the validating constructor: the trusted path
        # must only ever produce graphs the validator would accept.
        BipartiteGraph(
            n_workers=pruned.n_workers,
            n_tasks=pruned.n_tasks,
            edge_workers=pruned.edge_workers,
            edge_tasks=pruned.edge_tasks,
            edge_weights=pruned.edge_weights,
        )
        assert np.all(pruned.edge_weights >= 0.5)
        assert pruned.n_workers == graph.n_workers
        assert pruned.n_tasks == graph.n_tasks

    def test_pruned_adjacency_consistent(self):
        graph = _random_graph(2, 10, 10, density=0.8)
        pruned = graph.with_pruned_edges(graph.edge_weights >= 0.3)
        for task in range(pruned.n_tasks):
            expected = np.flatnonzero(pruned.edge_tasks == task)
            assert np.array_equal(pruned.edges_of_task(task), expected)

    def test_parent_cache_not_shared_with_pruned_copy(self):
        graph = _random_graph(4, 6, 6, density=1.0)
        graph.edges_of_task(0)  # warm the parent's CSR cache
        pruned = graph.prune_below(0.9)
        assert len(pruned.edges_of_task(0)) == np.count_nonzero(
            pruned.edge_tasks == 0
        )

    def test_keep_mask_shape_still_checked(self):
        graph = _random_graph(5, 4, 4, density=1.0)
        with pytest.raises(ValueError, match="one entry per edge"):
            graph.with_pruned_edges(np.ones(3, dtype=bool))

    def test_prune_everything(self):
        graph = _random_graph(6, 5, 5, density=1.0)
        pruned = graph.prune_below(2.0)
        assert pruned.is_empty
        assert pruned.edges_of_task(0).size == 0
        assert pruned.worker_degrees().sum() == 0
