"""Forward-solver and taint-lattice unit tests.

The solver is exercised through a deliberately simple client: reaching
"definedness" of names (assigned anywhere upstream), which has easily
hand-checkable answers on branchy/loopy graphs.
"""

import ast

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    EMPTY_STATE,
    EMPTY_TAINTS,
    DataflowDivergence,
    assign_targets,
    canonical,
    solve_forward,
    taint_equal,
    taint_get,
    taint_join,
    taint_set,
)


def _defined_transfer(block, state):
    for element in block.elements:
        node = element.node
        if isinstance(node, ast.stmt):
            for target, _ in assign_targets(node):
                if isinstance(target, ast.Name):
                    state = taint_set(state, target.id, frozenset({"def"}))
    return state


def solve(source):
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    in_states = solve_forward(
        cfg,
        entry_state=EMPTY_STATE,
        bottom=EMPTY_STATE,
        join=taint_join,
        transfer=_defined_transfer,
        equals=taint_equal,
    )
    return cfg, in_states


def _exit_state(cfg, in_states):
    # The exit block has no elements, so its in-state is the final answer
    # once the solver has merged every terminating path.  Recompute it from
    # predecessors for robustness.
    merged = in_states[cfg.exit]
    for pred in cfg.block(cfg.exit).pred:
        merged = taint_join(merged, _defined_transfer(cfg.block(pred), in_states[pred]))
    return merged


class TestSolver:
    def test_straight_line(self):
        cfg, states = solve("def f():\n    a = 1\n    b = a\n    return b")
        final = _exit_state(cfg, states)
        assert taint_get(final, "a") and taint_get(final, "b")

    def test_branch_join_unions_facts(self):
        cfg, states = solve(
            "def f(x):\n    if x:\n        a = 1\n    else:\n        b = 2\n    return 0"
        )
        final = _exit_state(cfg, states)
        # May-analysis: both branches' definitions survive the join.
        assert taint_get(final, "a") == frozenset({"def"})
        assert taint_get(final, "b") == frozenset({"def"})

    def test_loop_body_fact_reaches_exit(self):
        cfg, states = solve(
            "def f(x):\n    while x:\n        a = 1\n    return 0"
        )
        final = _exit_state(cfg, states)
        assert taint_get(final, "a") == frozenset({"def"})

    def test_try_finally_merges_handler_facts(self):
        cfg, states = solve(
            "def f():\n    try:\n        a = 1\n    except ValueError:\n"
            "        b = 2\n    finally:\n        c = 3\n    return 0"
        )
        final = _exit_state(cfg, states)
        for name in ("a", "b", "c"):
            assert taint_get(final, name) == frozenset({"def"}), name

    def test_divergence_guard_trips_on_non_monotone_transfer(self):
        func = ast.parse("def f(x):\n    while x:\n        a = 1\n    return 0").body[0]
        cfg = build_cfg(func)
        visits = {}

        def flipping(block, state):
            # Each block's out-state alternates forever: never a fixpoint.
            visits[block.id] = visits.get(block.id, 0) + 1
            return {"flip": frozenset({str(visits[block.id] % 2)})}

        with pytest.raises(DataflowDivergence):
            solve_forward(
                cfg,
                entry_state=EMPTY_STATE,
                bottom=EMPTY_STATE,
                join=lambda a, b: b,
                transfer=flipping,
                equals=taint_equal,
            )

    def test_unreachable_blocks_get_bottom(self):
        cfg, states = solve("def f():\n    return 1\n    a = 2")
        dead = [b for b in cfg.blocks if b.elements and not b.pred]
        assert dead
        assert states[dead[0].id] == EMPTY_STATE


class TestTaintLattice:
    def test_join_is_pointwise_union(self):
        a = {"x": frozenset({"sim"})}
        b = {"x": frozenset({"wall"}), "y": frozenset({"sim"})}
        merged = taint_join(a, b)
        assert merged["x"] == frozenset({"sim", "wall"})
        assert merged["y"] == frozenset({"sim"})

    def test_join_identity_on_empty(self):
        a = {"x": frozenset({"sim"})}
        assert taint_join(a, EMPTY_STATE) is a
        assert taint_join(EMPTY_STATE, a) is a

    def test_set_is_strong_update(self):
        state = taint_set(EMPTY_STATE, "x", frozenset({"sim"}))
        state = taint_set(state, "x", frozenset({"wall"}))
        assert taint_get(state, "x") == frozenset({"wall"})

    def test_set_empty_labels_removes_key(self):
        state = taint_set(EMPTY_STATE, "x", frozenset({"sim"}))
        state = taint_set(state, "x", EMPTY_TAINTS)
        assert "x" not in state
        assert taint_get(state, "x") == EMPTY_TAINTS

    def test_equal(self):
        a = taint_set(EMPTY_STATE, "x", frozenset({"sim"}))
        b = taint_set(EMPTY_STATE, "x", frozenset({"sim"}))
        c = taint_set(EMPTY_STATE, "x", frozenset({"wall"}))
        assert taint_equal(a, b)
        assert not taint_equal(a, c)
        assert not taint_equal(a, EMPTY_STATE)


class TestHelpers:
    def test_canonical_normalizes_spacing(self):
        a = ast.parse("self._inbox[ wid ]", mode="eval").body
        b = ast.parse("self._inbox[wid]", mode="eval").body
        assert canonical(a) == canonical(b)

    def test_assign_targets_flattens_tuples(self):
        stmt = ast.parse("a, b = 1, 2").body[0]
        pairs = list(assign_targets(stmt))
        assert [t.id for t, _ in pairs] == ["a", "b"]
        assert [v.value for _, v in pairs] == [1, 2]

    def test_assign_targets_mismatched_tuple_keeps_whole_rhs(self):
        stmt = ast.parse("a, b = pair()").body[0]
        pairs = list(assign_targets(stmt))
        assert len(pairs) == 2
        assert all(isinstance(v, ast.Call) for _, v in pairs)

    def test_assign_targets_for_loop_has_no_value(self):
        stmt = ast.parse("for i in items:\n    pass").body[0]
        pairs = list(assign_targets(stmt))
        assert len(pairs) == 1
        assert pairs[0][1] is None

    def test_assign_targets_augassign(self):
        stmt = ast.parse("x += 1").body[0]
        pairs = list(assign_targets(stmt))
        assert len(pairs) == 1
        assert isinstance(pairs[0][0], ast.Name)
