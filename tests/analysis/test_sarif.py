"""SARIF 2.1.0 renderer and the --format sarif / --changed CLI paths."""

import json
import subprocess

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.analysis.engine import lint_source
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif

DIRTY = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
CLEAN = "def f(x: int) -> int:\n    return x + 1\n"


def make_pkg(tmp_path, source, name="clockish.py"):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / name).write_text(source)
    return pkg / name


def render(source):
    result = lint_source(source, module="repro.sim.clockish", path="repro/sim/clockish.py")
    return json.loads(render_sarif(result, result.findings, []))


class TestRenderSarif:
    def test_log_envelope(self):
        log = render(DIRTY)
        assert log["version"] == SARIF_VERSION
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1

    def test_driver_lists_every_rule(self):
        log = render(CLEAN)
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "reprolint"
        ids = {r["id"] for r in driver["rules"]}
        for rule_id in ("DET001", "ASYNC001", "ASYNC003", "TIME001", "EXC001", "PARSE"):
            assert rule_id in ids

    def test_result_shape(self):
        log = render(DIRTY)
        results = log["runs"][0]["results"]
        assert len(results) == 1
        res = results[0]
        assert res["ruleId"] == "DET001"
        assert res["level"] == "error"
        assert res["message"]["text"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "repro/sim/clockish.py"
        assert loc["region"]["startLine"] == 5
        # ast columns are 0-based, SARIF's are 1-based.
        assert loc["region"]["startColumn"] >= 1
        assert res["partialFingerprints"]["reprolintFingerprint/v1"]
        assert "suppressions" not in res

    def test_baselined_findings_carry_external_suppression(self):
        result = lint_source(DIRTY, module="repro.sim.clockish", path="repro/sim/c.py")
        log = json.loads(render_sarif(result, [], result.findings))
        res = log["runs"][0]["results"][0]
        assert res["suppressions"] == [{"kind": "external"}]

    def test_clean_run_has_empty_results(self):
        log = render(CLEAN)
        assert log["runs"][0]["results"] == []

    def test_parse_errors_use_parse_rule(self, tmp_path):
        from repro.analysis.engine import lint_file

        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_file(bad)
        log = json.loads(render_sarif(result, result.findings, []))
        assert log["runs"][0]["results"][0]["ruleId"] == "PARSE"


class TestSarifCli:
    def test_format_sarif_writes_valid_log(self, tmp_path, capsys):
        make_pkg(tmp_path, DIRTY)
        code = main([str(tmp_path), "--no-baseline", "--format", "sarif"])
        assert code == EXIT_FINDINGS
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        assert log["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_sarif_to_output_file(self, tmp_path, capsys):
        make_pkg(tmp_path, DIRTY)
        report = tmp_path / "lint.sarif"
        main([str(tmp_path), "--no-baseline", "--format", "sarif", "--output", str(report)])
        assert json.loads(report.read_text())["runs"]
        assert capsys.readouterr().out == ""


def git(repo, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        text=True,
    )


def make_git_repo(tmp_path):
    """A committed tree with one clean file; returns the repo root."""
    make_pkg(tmp_path, CLEAN, name="stable.py")
    git(tmp_path, "init", "-q", "-b", "main")
    git(tmp_path, "-c", "user.name=t", "-c", "user.email=t@t", "add", ".")
    git(
        tmp_path,
        "-c", "user.name=t", "-c", "user.email=t@t",
        "commit", "-q", "-m", "seed",
    )
    return tmp_path


class TestChangedFlag:
    def test_only_changed_files_are_linted(self, tmp_path, capsys, monkeypatch):
        repo = make_git_repo(tmp_path)
        # Commit a second, already-dirty file; then dirty the stable one in
        # the worktree.  --changed must lint only the modified file, so the
        # committed-but-untouched violation stays invisible.
        dirty_committed = repo / "repro" / "sim" / "legacy.py"
        dirty_committed.write_text(DIRTY)
        git(repo, "add", str(dirty_committed))
        git(
            repo,
            "-c", "user.name=t", "-c", "user.email=t@t",
            "commit", "-q", "-m", "legacy",
        )
        (repo / "repro" / "sim" / "stable.py").write_text(DIRTY)
        monkeypatch.chdir(repo)
        code = main([str(repo), "--no-baseline", "--changed", "--base", "HEAD"])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "1 files" in out
        assert "stable.py" in out
        assert "legacy.py" not in out

    def test_no_changes_is_clean(self, tmp_path, capsys, monkeypatch):
        repo = make_git_repo(tmp_path)
        monkeypatch.chdir(repo)
        code = main([str(repo), "--no-baseline", "--changed", "--base", "HEAD"])
        assert code == EXIT_CLEAN
        assert "no python files changed vs HEAD" in capsys.readouterr().out

    def test_changes_outside_requested_paths_ignored(self, tmp_path, capsys, monkeypatch):
        repo = make_git_repo(tmp_path)
        other = repo / "scripts"
        other.mkdir()
        (other / "tool.py").write_text(DIRTY)
        git(repo, "add", "scripts")
        monkeypatch.chdir(repo)
        code = main(
            [str(repo / "repro"), "--no-baseline", "--changed", "--base", "HEAD"]
        )
        assert code == EXIT_CLEAN
        assert "no python files changed" in capsys.readouterr().out

    def test_deleted_files_are_skipped(self, tmp_path, capsys, monkeypatch):
        repo = make_git_repo(tmp_path)
        (repo / "repro" / "sim" / "stable.py").unlink()
        monkeypatch.chdir(repo)
        code = main([str(repo), "--no-baseline", "--changed", "--base", "HEAD"])
        assert code == EXIT_CLEAN

    def test_bad_base_is_usage_error(self, tmp_path, capsys, monkeypatch):
        repo = make_git_repo(tmp_path)
        monkeypatch.chdir(repo)
        code = main(
            [str(repo), "--no-baseline", "--changed", "--base", "no-such-ref"]
        )
        assert code == EXIT_USAGE
        assert "git diff" in capsys.readouterr().err
