"""Shared helpers for the reprolint suite: fixture loading + rule running."""

from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(filename: str, module: str, rule_ids=None):
    """Lint one fixture file under an explicit (scoped) module name."""
    source = (FIXTURES / filename).read_text(encoding="utf-8")
    rules = None
    if rule_ids is not None:
        from repro.analysis import get_rule

        rules = [get_rule(r) for r in rule_ids]
    return lint_source(source, module=module, path=f"tests/analysis/fixtures/{filename}", rules=rules)


@pytest.fixture
def run_fixture():
    return lint_fixture
