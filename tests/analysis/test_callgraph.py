"""Call-graph resolution tests: local, self-method, cross-module, limits."""

import ast

from repro.analysis.callgraph import (
    CallGraph,
    calls_in,
    definition_table,
    transitive_blocking_path,
)
from repro.analysis.modinfo import load_module, load_module_source

HELPERS = '''
import time


def leaf():
    time.sleep(1.0)


def chain():
    leaf()


async def fetch():
    return 1
'''

MAIN = '''
import asyncio

from mypkg import helpers
from mypkg.helpers import fetch


def local_sync():
    return 2


async def local_async():
    await asyncio.sleep(0)


class Server:
    async def beat(self):
        await asyncio.sleep(0)

    async def run(self):
        self.beat()
        local_async()
        helpers.chain()
        fetch()
'''


def build_tree(tmp_path):
    pkg = tmp_path / "mypkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "helpers.py").write_text(HELPERS)
    (pkg / "main.py").write_text(MAIN)
    return load_module(pkg / "main.py", rel_path="mypkg/main.py", module="mypkg.main")


def find_calls(info, symbol):
    table = definition_table(info)
    return calls_in(table[symbol])


def call_named(calls, text):
    return next(c for c in calls if text in ast.unparse(c.func))


class TestLocalResolution:
    def test_module_level_function(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "local_async"), "Server")
        assert ref is not None
        assert ref.qualname == "local_async"
        assert ref.is_async

    def test_self_method(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "self.beat"), "Server")
        assert ref is not None
        assert ref.qualname == "Server.beat"
        assert ref.is_async

    def test_self_method_without_class_context(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        assert graph.resolve_call(call_named(calls, "self.beat"), None) is None


class TestCrossModule:
    def test_module_attribute_call(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "helpers.chain"), "Server")
        assert ref is not None
        assert ref.module == "mypkg.helpers"
        assert not ref.is_async

    def test_from_import_symbol(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "fetch"), "Server")
        assert ref is not None
        assert ref.module == "mypkg.helpers"
        assert ref.is_async

    def test_in_memory_fixture_disables_cross_module(self):
        info = load_module_source(
            MAIN, rel_path="<memory>", module="mypkg.main"
        )
        graph = CallGraph(info)
        assert graph.root is None
        calls = find_calls(info, "Server.run")
        assert graph.resolve_call(call_named(calls, "helpers.chain"), "Server") is None
        # Local names still resolve without a source root.
        assert graph.resolve_call(call_named(calls, "local_async"), "Server") is not None

    def test_third_party_names_resolve_to_none(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "local_async")
        assert graph.resolve_call(call_named(calls, "asyncio.sleep"), None) is None


class TestCoroutineDetection:
    def test_known_asyncio_factory(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "local_async")
        name = graph.is_coroutine_call(call_named(calls, "asyncio.sleep"))
        assert name == "asyncio.sleep"

    def test_cross_module_async_def(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        assert graph.is_coroutine_call(call_named(calls, "fetch")) == "fetch"

    def test_sync_function_is_not_coroutine(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        assert graph.is_coroutine_call(call_named(calls, "helpers.chain")) is None


class TestTransitiveBlocking:
    def test_chain_across_modules(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "helpers.chain"), "Server")
        path = transitive_blocking_path(graph, ref, {"time.sleep"})
        assert path == ["chain", "leaf", "time.sleep"]

    def test_depth_limit(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "helpers.chain"), "Server")
        # chain -> leaf -> time.sleep needs depth 2; a cap of 1 misses it.
        assert transitive_blocking_path(graph, ref, {"time.sleep"}, max_depth=1) is None

    def test_no_blocking_means_none(self, tmp_path):
        info = build_tree(tmp_path)
        graph = CallGraph(info)
        calls = find_calls(info, "Server.run")
        ref = graph.resolve_call(call_named(calls, "local_async"), "Server")
        # async callee: the walk refuses to descend (calling it never blocks).
        assert transitive_blocking_path(graph, ref, {"time.sleep"}) is None


class TestDefinitionTable:
    def test_dotted_symbols(self, tmp_path):
        info = build_tree(tmp_path)
        table = definition_table(info)
        assert "Server.run" in table
        assert "Server.beat" in table
        assert "local_sync" in table

    def test_calls_in_skips_nested_defs(self):
        info = load_module_source(
            "def outer():\n"
            "    a()\n"
            "    def inner():\n"
            "        b()\n"
            "    return inner\n",
            rel_path="<memory>",
            module="m",
        )
        names = {ast.unparse(c.func) for c in calls_in(definition_table(info)["outer"])}
        assert names == {"a"}
