"""Self-check: the repo's own source must lint clean, baseline-modulo.

This is the acceptance criterion for the PR: `python -m repro.analysis
src/repro` exits 0.  Running it as a test keeps the invariant enforced by
the ordinary test suite, not just the CI lint job.
"""

from pathlib import Path

from repro.analysis import lint_paths, load_baseline
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_lints_clean_baseline_modulo():
    result = lint_paths([SRC], repo_root=REPO_ROOT)
    assert result.errors == [], [f.render() for f in result.errors]

    baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
    baseline = load_baseline(baseline_path) if baseline_path.exists() else Baseline()
    new, _baselined = baseline.partition(result.findings)
    assert new == [], "new reprolint findings:\n" + "\n".join(f.render() for f in new)


def test_committed_baseline_has_no_stale_entries():
    baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
    assert baseline_path.exists(), "reprolint-baseline.json must be committed"
    baseline = load_baseline(baseline_path)
    result = lint_paths([SRC], repo_root=REPO_ROOT)
    stale = baseline.stale_fingerprints(result.findings)
    assert stale == set(), f"stale baseline entries (fixed findings): {sorted(stale)}"


def test_analysis_package_itself_in_scope():
    # The linter lints itself: repro.analysis is scanned like everything else.
    result = lint_paths([SRC / "analysis"], repo_root=REPO_ROOT)
    assert result.files_scanned > 10
    assert result.findings == []
