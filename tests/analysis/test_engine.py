"""Engine mechanics: discovery, module-name inference, suppression parsing,
fingerprint stability, TYPE_CHECKING import tagging, parse-error handling."""

import textwrap
from pathlib import Path

from repro.analysis import lint_file, lint_paths, lint_source
from repro.analysis.engine import iter_python_files, module_name_for, parse_ok
from repro.analysis.findings import Finding, compute_fingerprint, fingerprint_findings
from repro.analysis.modinfo import load_module_source, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestDiscovery:
    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        found = list(iter_python_files([tmp_path]))
        assert found == [tmp_path / "a.py"]

    def test_direct_file_passes_through(self, tmp_path):
        target = tmp_path / "b.py"
        target.write_text("y = 2\n")
        assert list(iter_python_files([target])) == [target]

    def test_module_name_inference(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "deadline.py"
        assert module_name_for(path) == "repro.core.deadline"

    def test_module_name_for_package_init(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "__init__.py"
        assert module_name_for(path) == "repro.core"

    def test_module_name_outside_any_package(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("pass\n")
        assert module_name_for(loose) == "script"


class TestSuppressions:
    def test_parse_single_and_multi(self):
        lines = [
            "x = 1  # reprolint: disable=DET001",
            "y = 2",
            "z = 3  # reprolint: disable=NUM001, OBS001",
            "w = 4  # reprolint: disable=all",
        ]
        supp = parse_suppressions(lines)
        assert supp[1] == {"DET001"}
        assert 2 not in supp
        assert supp[3] == {"NUM001", "OBS001"}
        assert supp[4] == {"ALL"}

    def test_disable_all_suppresses_every_rule(self):
        src = "import time\n\n\ndef f() -> float:\n    return time.time()  # reprolint: disable=all\n"
        result = lint_source(src, module="repro.sim.clockish")
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_unrelated_rule_id_does_not_suppress(self):
        src = "import time\n\n\ndef f() -> float:\n    return time.time()  # reprolint: disable=NUM001\n"
        result = lint_source(src, module="repro.sim.clockish")
        assert [f.rule for f in result.findings] == ["DET001"]


class TestFingerprints:
    def test_stable_under_line_moves(self):
        base = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        shifted = "import time\n\n# a comment pushing things down\n\n\ndef f() -> float:\n    return time.time()\n"
        fp1 = lint_source(base, module="repro.sim.m").findings[0].fingerprint
        fp2 = lint_source(shifted, module="repro.sim.m").findings[0].fingerprint
        assert fp1 == fp2

    def test_changes_when_line_text_changes(self):
        a = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
        b = "import time\n\n\ndef f() -> float:\n    return time.time() + 1.0\n"
        fp_a = lint_source(a, module="repro.sim.m").findings[0].fingerprint
        fp_b = lint_source(b, module="repro.sim.m").findings[0].fingerprint
        assert fp_a != fp_b

    def test_identical_lines_get_distinct_occurrences(self):
        src = (
            "import time\n\n\ndef f() -> float:\n    return time.time()\n\n\n"
            "def g() -> float:\n    return time.time()\n"
        )
        result = lint_source(src, module="repro.sim.m")
        fps = [f.fingerprint for f in result.findings]
        assert len(fps) == 2
        assert len(set(fps)) == 2

    def test_compute_fingerprint_normalizes_whitespace(self):
        a = compute_fingerprint("DET001", "p.py", "x  =   time.time()", 0)
        b = compute_fingerprint("DET001", "p.py", "x = time.time()", 0)
        assert a == b

    def test_fingerprint_findings_sorts_by_position(self):
        findings = [
            Finding(rule="NUM001", path="p.py", line=5, col=0, message="later"),
            Finding(rule="NUM001", path="p.py", line=2, col=0, message="earlier"),
        ]
        out = fingerprint_findings(findings, ["l1", "a == 1.0", "l3", "l4", "b == 2.0"])
        assert [f.line for f in out] == [2, 5]
        assert all(f.fingerprint for f in out)


class TestTypeCheckingImports:
    def test_type_checking_import_tagged(self):
        src = textwrap.dedent(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.platform.server import REACTServer

            from repro.core.task import Task
            """
        )
        info = load_module_source(src, rel_path="m.py", module="repro.stats.m")
        by_name = {imp.name: imp.type_only for imp in info.imported_names}
        assert by_name["repro.platform.server.REACTServer"] is True
        assert by_name["repro.core.task.Task"] is False

    def test_alias_resolution_through_from_import(self):
        src = "from time import perf_counter as pc\n"
        info = load_module_source(src, rel_path="m.py", module="repro.sim.m")
        assert info.imports["pc"] == "time.perf_counter"

    def test_relative_import_resolution(self):
        src = "from ..core.task import Task\nfrom .engine import Engine\n"
        info = load_module_source(src, rel_path="src/repro/sim/clock.py", module="repro.sim.clock")
        names = {imp.name for imp in info.imported_names}
        assert "repro.core.task.Task" in names
        assert "repro.sim.engine.Engine" in names


class TestErrorsAndFiles:
    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_file(bad)
        assert result.findings == []
        assert len(result.errors) == 1
        assert result.errors[0].rule == "PARSE"
        assert result.all_active == result.errors

    def test_parse_ok_helper(self):
        assert parse_ok("x = 1\n")
        assert not parse_ok("def broken(:\n")

    def test_lint_file_infers_module_from_disk_layout(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "clockish.py"
        mod.write_text("import time\n\n\ndef f() -> float:\n    return time.time()\n")
        result = lint_file(mod)
        assert [f.rule for f in result.findings] == ["DET001"]

    def test_lint_paths_aggregates_and_sorts(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "b.py").write_text("def f(p: float) -> bool:\n    return p == 1.0\n")
        (pkg / "a.py").write_text("import time\n\n\ndef g() -> float:\n    return time.time()\n")
        result = lint_paths([tmp_path])
        # 4 files scanned (2 inits + 2 modules), findings sorted by path.
        assert result.files_scanned == 4
        assert [f.rule for f in result.findings] == ["DET001", "NUM001"]
