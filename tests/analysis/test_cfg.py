"""CFG construction unit tests: shapes, await points, guards, edges."""

import ast

import pytest

from repro.analysis.cfg import Guard, build_cfg, contains_await, function_cfgs


def cfg_of(source, name=None):
    tree = ast.parse(source)
    cfgs = {c.name: c for c in function_cfgs(tree)}
    if name is None:
        assert len(cfgs) == 1
        return next(iter(cfgs.values()))
    return cfgs[name]


def reachable(cfg):
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for nxt in cfg.block(stack.pop()).succ:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


class TestContainsAwait:
    def test_await_expression(self):
        stmt = ast.parse("async def f():\n    x = await g()").body[0].body[0]
        assert contains_await(stmt)

    def test_async_comprehension(self):
        stmt = ast.parse("async def f():\n    return [x async for x in it]").body[0].body[0]
        assert contains_await(stmt)

    def test_nested_def_is_opaque(self):
        stmt = ast.parse(
            "async def f():\n    async def g():\n        await h()"
        ).body[0].body[0]
        assert not contains_await(stmt)


class TestBranchJoin:
    SOURCE = """
def f(x):
    a = 1
    if x:
        b = 2
    else:
        b = 3
    return b
"""

    def test_then_and_else_meet_at_join(self):
        cfg = cfg_of(self.SOURCE)
        # The return statement's block has (at least) two predecessors.
        ret_blocks = [
            b
            for b in cfg.blocks
            if any(isinstance(e.node, ast.Return) for e in b.elements)
        ]
        assert len(ret_blocks) == 1
        join = ret_blocks[0]
        assert len(join.pred) >= 1
        # Walking back: both branch tails flow into the join's predecessors.
        assert cfg.exit in join.succ

    def test_branch_guards(self):
        cfg = cfg_of(self.SOURCE)
        guard_branches = set()
        for block in cfg.blocks:
            for guard in block.guards:
                guard_branches.add(guard.branch)
        assert guard_branches == {True, False}

    def test_join_has_no_branch_guard(self):
        cfg = cfg_of(self.SOURCE)
        ret_block = next(
            b
            for b in cfg.blocks
            if any(isinstance(e.node, ast.Return) for e in b.elements)
        )
        assert ret_block.guards == ()


class TestLoops:
    def test_while_has_back_edge(self):
        cfg = cfg_of("def f(x):\n    while x:\n        x -= 1\n    return x")
        heads = [
            b for b in cfg.blocks if any(e.is_test for e in b.elements) and b.pred
        ]
        assert any(len(h.pred) >= 2 for h in heads)  # entry edge + back edge

    def test_while_true_no_exit_edge_from_head(self):
        cfg = cfg_of("def f():\n    while True:\n        pass")
        head = next(b for b in cfg.blocks if any(e.is_test for e in b.elements))
        # The only successor is the loop body; no fallthrough to the exit.
        assert len(head.succ) == 1

    def test_break_targets_loop_exit(self):
        cfg = cfg_of(
            "def f(x):\n    while x:\n        if x > 2:\n            break\n    return x"
        )
        assert cfg.exit in reachable(cfg)

    def test_for_loop_guard_is_iter(self):
        cfg = cfg_of("def f(items):\n    for i in items:\n        print(i)")
        body_guards = [g for b in cfg.blocks for g in b.guards]
        assert any(isinstance(g.test, ast.Name) and g.test.id == "items" for g in body_guards)


class TestTryFinally:
    SOURCE = """
def f(x):
    try:
        risky(x)
    except ValueError:
        handle()
    finally:
        cleanup()
"""

    def test_handler_reachable_from_body(self):
        cfg = cfg_of(self.SOURCE)
        handler_blocks = [
            b
            for b in cfg.blocks
            if any(
                isinstance(e.node, ast.Expr)
                and isinstance(e.node.value, ast.Call)
                and isinstance(e.node.value.func, ast.Name)
                and e.node.value.func.id == "handle"
                for e in b.elements
            )
        ]
        assert handler_blocks and handler_blocks[0].id in reachable(cfg)

    def test_finally_reachable_on_both_paths(self):
        cfg = cfg_of(self.SOURCE)
        cleanup_block = next(
            b
            for b in cfg.blocks
            if any(
                isinstance(e.node, ast.Expr)
                and isinstance(e.node.value, ast.Call)
                and isinstance(e.node.value.func, ast.Name)
                and e.node.value.func.id == "cleanup"
                for e in b.elements
            )
        )
        # Joined from the protected body AND the handler.
        assert len(cleanup_block.pred) >= 2

    def test_all_paths_terminate_finally_still_lowered(self):
        cfg = cfg_of(
            "def f():\n    try:\n        return 1\n    finally:\n        cleanup()"
        )
        assert cfg.exit in reachable(cfg)


class TestAwaitPoints:
    def test_await_isolated_into_own_block(self):
        cfg = cfg_of(
            "async def f():\n    a = 1\n    await g()\n    b = 2"
        )
        await_blocks = cfg.await_blocks()
        assert len(await_blocks) == 1
        assert len(await_blocks[0].elements) == 1

    def test_async_for_head_awaits(self):
        cfg = cfg_of("async def f(it):\n    async for x in it:\n        use(x)")
        assert any(
            e.awaits and isinstance(e.node, ast.AsyncFor)
            for b in cfg.blocks
            for e in b.elements
        )

    def test_async_with_enter_and_exit_await(self):
        cfg = cfg_of("async def f(lock):\n    async with lock:\n        body()")
        assert len(cfg.await_blocks()) == 2  # __aenter__ and __aexit__

    def test_sync_function_has_no_await_blocks(self):
        cfg = cfg_of("def f():\n    g()\n    return 1")
        assert cfg.await_blocks() == []
        assert not cfg.is_async


class TestNestedAsyncDefs:
    SOURCE = """
class Server:
    async def outer(self):
        async def inner():
            await leaf()
        await inner()

def top():
    return 1
"""

    def test_each_function_gets_a_cfg_with_dotted_name(self):
        tree = ast.parse(self.SOURCE)
        names = {c.name for c in function_cfgs(tree)}
        assert names == {"Server.outer", "Server.outer.inner", "top"}

    def test_nested_await_does_not_leak_into_outer(self):
        tree = ast.parse(self.SOURCE)
        cfgs = {c.name: c for c in function_cfgs(tree)}
        # outer awaits once (its own `await inner()`), not twice.
        assert len(cfgs["Server.outer"].await_blocks()) == 1
        assert len(cfgs["Server.outer.inner"].await_blocks()) == 1
        assert cfgs["top"].await_blocks() == []


class TestReversePostorder:
    def test_entry_first_and_all_blocks_present(self):
        cfg = cfg_of(
            "def f(x):\n    while x:\n        if x > 1:\n            x -= 1\n    return x"
        )
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert sorted(order) == sorted(b.id for b in cfg.blocks)

    def test_match_statement_lowered(self):
        cfg = cfg_of(
            "def f(x):\n    match x:\n        case 1:\n            a = 1\n"
            "        case _:\n            a = 2\n    return a"
        )
        assert cfg.exit in reachable(cfg)

    def test_dead_code_block_exists_without_preds(self):
        cfg = cfg_of("def f():\n    return 1\n    unreachable()")
        dead = [
            b
            for b in cfg.blocks
            if b.elements and not b.pred and b.id not in (cfg.entry,)
        ]
        assert dead  # still materialized so rules can scan it


class TestGuardStacks:
    def test_nested_guards_accumulate(self):
        cfg = cfg_of(
            "def f(a, b):\n    if a:\n        if b:\n            act()"
        )
        depths = [len(b.guards) for b in cfg.blocks]
        assert max(depths) == 2

    def test_guard_records_test_expression(self):
        cfg = cfg_of("def f(a):\n    if a > 1:\n        act()")
        guards = [g for b in cfg.blocks for g in b.guards]
        assert guards and all(isinstance(g, Guard) for g in guards)
        assert any(isinstance(g.test, ast.Compare) for g in guards)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
