"""Per-rule contract tests: each rule fires on its fixture's positive cases,
honours inline suppression, stays quiet on the clean cases, and respects its
module-name scope."""

from repro.analysis import all_rules

from .conftest import lint_fixture


def rules_of(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


class TestDET001:
    def test_positive_hits(self):
        result = lint_fixture("det001_cases.py", "repro.core.fixture_det001")
        hits = rules_of(result, "DET001")
        assert len(hits) == 7
        messages = " ".join(f.message for f in hits)
        assert "time.time" in messages
        assert "datetime.datetime.now" in messages
        assert "time.perf_counter" in messages  # aliased from-import resolved
        assert "numpy.random.default_rng" in messages
        assert "numpy.random.seed" in messages
        assert "loop.time" in messages
        assert "_event_loop.time" in messages

    def test_suppressed_hit_does_not_gate(self):
        result = lint_fixture("det001_cases.py", "repro.core.fixture_det001")
        suppressed = [f for f in result.suppressed if f.rule == "DET001"]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "suppressed_hit"

    def test_clean_function_not_flagged(self):
        result = lint_fixture("det001_cases.py", "repro.core.fixture_det001")
        assert not any(f.symbol == "clean" for f in result.findings)

    def test_wall_clock_allowed_in_service_and_experiments(self):
        # The wall-clock checks (including loop.time()) skip the layers
        # whose job is wall time; the RNG checks still fire there.
        for name in ("repro.service.fixture", "repro.experiments.fixture"):
            result = lint_fixture("det001_cases.py", name)
            hits = rules_of(result, "DET001")
            assert len(hits) == 2, name
            messages = " ".join(f.message for f in hits)
            assert "numpy.random.default_rng" in messages
            assert "numpy.random.seed" in messages
            assert ".time" not in messages

    def test_whole_tree_in_scope(self):
        # Pre-service, DET001 covered only sim/core/platform; now any repro
        # package outside the carve-out is held to the same clock discipline.
        result = lint_fixture("det001_cases.py", "repro.workload.fixture")
        assert len(rules_of(result, "DET001")) == 7


class TestDET002:
    def test_positive_hits(self):
        result = lint_fixture("det002_cases.py", "repro.platform.fixture_det002")
        hits = rules_of(result, "DET002")
        assert len(hits) == 4
        kinds = [f.message for f in hits]
        assert sum("module scope" in m for m in kinds) == 1
        assert sum("class scope" in m for m in kinds) == 1
        assert sum("legacy global-state" in m for m in kinds) == 2

    def test_suppression_and_clean(self):
        result = lint_fixture("det002_cases.py", "repro.platform.fixture_det002")
        assert any(f.rule == "DET002" for f in result.suppressed)
        assert not any(f.symbol == "clean" for f in result.findings)

    def test_rng_factory_module_exempt(self):
        result = lint_fixture("det002_cases.py", "repro.sim.rng")
        assert rules_of(result, "DET002") == []


class TestDET003:
    def test_positive_hits(self):
        result = lint_fixture("det003_cases.py", "repro.dist.fixture_det003")
        hits = rules_of(result, "DET003")
        assert len(hits) == 5
        assert all(f.symbol == "positive_hit" for f in hits)
        messages = " ".join(f.message for f in hits)
        assert "numpy.random.default_rng" in messages
        assert "numpy.random.SeedSequence" in messages
        assert "RngRegistry" in messages
        assert "random.Random" in messages

    def test_suppressed_and_clean(self):
        result = lint_fixture("det003_cases.py", "repro.dist.fixture_det003")
        assert len([f for f in result.suppressed if f.rule == "DET003"]) == 1
        # Spawn-key construction and arithmetic behind a call boundary
        # (a generator draw used as a seed) are both allowed.
        assert not any(f.symbol == "clean" for f in result.findings)

    def test_sim_scope_also_covered(self):
        result = lint_fixture("det003_cases.py", "repro.sim.fixture_det003")
        assert len(rules_of(result, "DET003")) == 5

    def test_out_of_scope(self):
        # experiments/ and analysis/ never hand seeds to sim code directly.
        result = lint_fixture("det003_cases.py", "repro.experiments.fixture")
        assert rules_of(result, "DET003") == []


class TestNUM001:
    def test_positive_hits(self):
        result = lint_fixture("num001_cases.py", "repro.stats.fixture_num001")
        hits = rules_of(result, "NUM001")
        assert len(hits) == 3
        assert all(f.symbol == "positive_hit" for f in hits)

    def test_suppressed_and_clean(self):
        result = lint_fixture("num001_cases.py", "repro.stats.fixture_num001")
        assert len([f for f in result.suppressed if f.rule == "NUM001"]) == 1
        assert not any(f.symbol == "clean" for f in result.findings)

    def test_out_of_scope(self):
        result = lint_fixture("num001_cases.py", "repro.platform.fixture")
        assert rules_of(result, "NUM001") == []


class TestOBS001:
    def test_positive_hits(self):
        result = lint_fixture("obs001_cases.py", "repro.platform.fixture_obs001")
        hits = rules_of(result, "OBS001")
        assert len(hits) == 2
        assert any("None-check" in f.message for f in hits)
        assert any("truthiness guard" in f.message for f in hits)

    def test_suppressed_and_clean(self):
        result = lint_fixture("obs001_cases.py", "repro.platform.fixture_obs001")
        assert len([f for f in result.suppressed if f.rule == "OBS001"]) == 1
        assert not any(f.symbol == "Instrumented.clean" for f in result.findings)

    def test_obs_package_itself_out_of_scope(self):
        # resolve() in repro.obs is the one place allowed to look at None.
        result = lint_fixture("obs001_cases.py", "repro.obs.runtime")
        assert rules_of(result, "OBS001") == []


class TestKER001:
    def test_positive_hit(self):
        result = lint_fixture("ker001_cases.py", "repro.core.kernels.fixture_ker001")
        hits = rules_of(result, "KER001")
        assert len(hits) == 1
        assert "repro.platform" in hits[0].message

    def test_suppressed_hit(self):
        result = lint_fixture("ker001_cases.py", "repro.core.kernels.fixture_ker001")
        assert len([f for f in result.suppressed if f.rule == "KER001"]) == 1

    def test_type_checking_imports_allowed(self):
        result = lint_fixture("ker001_cases.py", "repro.core.kernels.fixture_ker001")
        assert not any("repro.obs" in f.message for f in result.findings)

    def test_unconstrained_module_ignored(self):
        result = lint_fixture("ker001_cases.py", "repro.experiments.fixture")
        assert rules_of(result, "KER001") == []

    def test_service_must_not_import_experiments(self):
        result = lint_fixture(
            "ker001_service_cases.py", "repro.service.fixture_ker001"
        )
        hits = rules_of(result, "KER001")
        assert len(hits) == 1
        assert "repro.experiments" in hits[0].message
        # Importing the platform from the service layer is the design.
        assert not any("repro.platform" in f.message for f in hits)

    def test_platform_must_not_import_service(self):
        result = lint_fixture(
            "ker001_service_cases.py", "repro.platform.fixture_ker001"
        )
        hits = rules_of(result, "KER001")
        assert len(hits) == 2
        messages = " ".join(f.message for f in hits)
        assert "repro.service" in messages
        assert "repro.experiments" in messages

    def test_shipped_service_package_lints_clean(self):
        from pathlib import Path

        from repro.analysis import lint_source

        pkg = Path(__file__).parents[2] / "src" / "repro" / "service"
        for path in sorted(pkg.glob("*.py")):
            module = f"repro.service.{path.stem}"
            result = lint_source(
                path.read_text(encoding="utf-8"), module=module, path=str(path)
            )
            assert rules_of(result, "KER001") == [], module
            assert rules_of(result, "DET001") == [], module

    def test_wbgm_kernel_module_is_constrained(self):
        """The new WBGM kernel module falls under the kernels leaf contract."""
        from repro.analysis.rules.layering import _layer_for

        layer, forbidden = _layer_for("repro.core.kernels.wbgm")
        assert layer == "repro.core.kernels"
        assert "repro.sim" in forbidden and "repro.platform" in forbidden

    def test_shipped_wbgm_kernel_lints_clean(self):
        """The real wbgm backend honours the numpy-only leaf contract."""
        from pathlib import Path

        from repro.analysis import lint_source

        path = Path(__file__).parents[2] / "src" / "repro" / "core" / "kernels" / "wbgm.py"
        result = lint_source(
            path.read_text(encoding="utf-8"),
            module="repro.core.kernels.wbgm",
            path=str(path),
        )
        assert rules_of(result, "KER001") == []


class TestAPI001:
    def test_positive_hits(self):
        result = lint_fixture("api001_cases.py", "repro.core.fixture_api001")
        hits = rules_of(result, "API001")
        assert {f.symbol for f in hits} == {
            "positive_hit",
            "PublicEstimator.fit",
            "PublicEstimator.evaluate",
        }
        by_symbol = {f.symbol: f.message for f in hits}
        assert "samples" in by_symbol["positive_hit"]
        assert "return" in by_symbol["positive_hit"]
        assert "*args" in by_symbol["PublicEstimator.evaluate"]
        assert "**kwargs" in by_symbol["PublicEstimator.evaluate"]

    def test_private_nested_overload_clean(self):
        result = lint_fixture("api001_cases.py", "repro.core.fixture_api001")
        symbols = {f.symbol for f in result.findings}
        assert "_private_helper" not in symbols
        assert "_PrivateClass.method" not in symbols
        assert "sig" not in symbols
        assert "clean" not in symbols
        assert "clean.inner" not in symbols

    def test_suppressed(self):
        result = lint_fixture("api001_cases.py", "repro.core.fixture_api001")
        assert len([f for f in result.suppressed if f.rule == "API001"]) == 1


class TestRuleRegistry:
    def test_twelve_rules_registered_with_docs(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert ids == [
            "DET001",
            "DET002",
            "DET003",
            "NUM001",
            "OBS001",
            "KER001",
            "API001",
            "ASYNC001",
            "ASYNC002",
            "ASYNC003",
            "TIME001",
            "EXC001",
        ]
        for rule in rules:
            assert rule.title, rule.id
            assert rule.rationale, rule.id

    def test_every_rule_has_failing_fixture(self):
        """Acceptance criterion: each rule demonstrably fires."""
        cases = {
            "DET001": ("det001_cases.py", "repro.core.fixture_det001"),
            "DET002": ("det002_cases.py", "repro.platform.fixture_det002"),
            "DET003": ("det003_cases.py", "repro.dist.fixture_det003"),
            "NUM001": ("num001_cases.py", "repro.stats.fixture_num001"),
            "OBS001": ("obs001_cases.py", "repro.platform.fixture_obs001"),
            "KER001": ("ker001_cases.py", "repro.core.kernels.fixture_ker001"),
            "API001": ("api001_cases.py", "repro.core.fixture_api001"),
            "ASYNC001": ("async001_cases.py", "repro.service.fixture_async001"),
            "ASYNC002": ("async002_cases.py", "repro.service.fixture_async002"),
            "ASYNC003": ("async003_cases.py", "repro.service.fixture_async003"),
            "TIME001": ("time001_cases.py", "repro.service.fixture_time001"),
            "EXC001": ("exc001_cases.py", "repro.service.fixture_exc001"),
        }
        for rule_id, (filename, module) in cases.items():
            result = lint_fixture(filename, module, rule_ids=[rule_id])
            assert any(f.rule == rule_id for f in result.findings), rule_id


class TestASYNC001:
    def test_positive_hits(self):
        result = lint_fixture("async001_cases.py", "repro.service.fixture_async001")
        hits = rules_of(result, "ASYNC001")
        assert len(hits) == 4
        messages = " ".join(f.message for f in hits)
        assert "time.sleep" in messages
        assert "subprocess.run" in messages
        assert "open" in messages
        assert "sync_chain -> sync_leaf -> time.sleep" in messages

    def test_suppressed(self):
        result = lint_fixture("async001_cases.py", "repro.service.fixture_async001")
        suppressed = [f for f in result.suppressed if f.rule == "ASYNC001"]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "suppressed_hit"

    def test_clean_unfiltered(self):
        # The clean coroutine (to_thread / run_in_executor shapes) must not
        # trip ASYNC001 — nor any other rule.
        result = lint_fixture("async001_cases.py", "repro.service.fixture_async001")
        assert not any(f.symbol == "clean" for f in result.findings)
        # Blocking calls in *sync* defs are never ASYNC001 findings.
        assert not any(f.symbol.startswith("sync_") for f in result.findings)

    def test_scope_excluded(self):
        result = lint_fixture(
            "async001_cases.py", "repro.sim.fixture_async001", rule_ids=["ASYNC001"]
        )
        assert not rules_of(result, "ASYNC001")


class TestASYNC002:
    def test_positive_hits(self):
        result = lint_fixture("async002_cases.py", "repro.service.fixture_async002")
        hits = rules_of(result, "ASYNC002")
        assert len(hits) == 3
        messages = " ".join(f.message for f in hits)
        assert "notify" in messages  # local coroutine resolved
        assert "asyncio.sleep" in messages  # known awaitable factory
        assert "Server.beat" in messages  # self.method resolved via the class

    def test_suppressed(self):
        result = lint_fixture("async002_cases.py", "repro.service.fixture_async002")
        suppressed = [f for f in result.suppressed if f.rule == "ASYNC002"]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "suppressed_hit"

    def test_clean_unfiltered(self):
        result = lint_fixture("async002_cases.py", "repro.service.fixture_async002")
        assert not any(f.symbol == "clean" for f in result.findings)

    def test_scope_is_all_of_repro(self):
        result = lint_fixture(
            "async002_cases.py", "repro.sim.fixture_async002", rule_ids=["ASYNC002"]
        )
        assert len(rules_of(result, "ASYNC002")) == 3

    def test_scope_excluded_outside_repro(self):
        result = lint_fixture(
            "async002_cases.py", "scripts.fixture_async002", rule_ids=["ASYNC002"]
        )
        assert not rules_of(result, "ASYNC002")


class TestASYNC003:
    def test_positive_hits(self):
        result = lint_fixture("async003_cases.py", "repro.service.fixture_async003")
        hits = rules_of(result, "ASYNC003")
        assert len(hits) == 3
        symbols = {f.symbol for f in hits}
        assert symbols == {
            "RegionState.positive_pop",
            "RegionState.positive_phase",
            "RegionState.positive_while",
        }
        messages = " ".join(f.message for f in hits)
        assert "self._inbox" in messages
        assert "task.phase" in messages
        assert "self._running" in messages

    def test_suppressed(self):
        result = lint_fixture("async003_cases.py", "repro.service.fixture_async003")
        suppressed = [f for f in result.suppressed if f.rule == "ASYNC003"]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "RegionState.suppressed_hit"

    def test_sanctioned_shapes_unfiltered(self):
        # Re-testing on the resume edge and mutating before the await are
        # the two fixes the rule message recommends; neither may fire.
        result = lint_fixture("async003_cases.py", "repro.service.fixture_async003")
        assert not any(f.symbol == "RegionState.revalidated" for f in result.findings)
        assert not any(
            f.symbol == "RegionState.mutate_before_await" for f in result.findings
        )
        assert not any(f.symbol == "RegionState.clean" for f in result.findings)

    def test_scope_excluded(self):
        result = lint_fixture(
            "async003_cases.py", "repro.sim.fixture_async003", rule_ids=["ASYNC003"]
        )
        assert not rules_of(result, "ASYNC003")


class TestTIME001:
    def test_positive_hits(self):
        result = lint_fixture("time001_cases.py", "repro.service.fixture_time001")
        hits = rules_of(result, "TIME001")
        assert len(hits) == 4
        symbols = {f.symbol for f in hits}
        assert symbols == {
            "positive_direct",
            "positive_compare",
            "positive_through_locals",
            "positive_branch_join",
        }
        kinds = " ".join(f.message for f in hits)
        assert "arithmetic" in kinds
        assert "comparison" in kinds

    def test_suppressed(self):
        result = lint_fixture("time001_cases.py", "repro.service.fixture_time001")
        suppressed = [f for f in result.suppressed if f.rule == "TIME001"]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "suppressed_hit"

    def test_clean_unfiltered(self):
        # Single-domain arithmetic and call-boundary conversion stay quiet.
        result = lint_fixture("time001_cases.py", "repro.service.fixture_time001")
        for symbol in ("clean_sim_only", "clean_wall_only", "clean_boundary", "to_sim"):
            assert not any(f.symbol == symbol for f in result.findings), symbol

    def test_scope_excluded_outside_repro(self):
        result = lint_fixture(
            "time001_cases.py", "scripts.fixture_time001", rule_ids=["TIME001"]
        )
        assert not rules_of(result, "TIME001")


class TestEXC001:
    def test_positive_hits(self):
        result = lint_fixture("exc001_cases.py", "repro.service.fixture_exc001")
        hits = rules_of(result, "EXC001")
        assert len(hits) == 3
        symbols = {f.symbol for f in hits}
        assert symbols == {"positive_swallow", "positive_bare", "positive_tuple"}
        messages = " ".join(f.message for f in hits)
        assert "broad `except Exception`" in messages
        assert "bare `except:`" in messages

    def test_suppressed(self):
        result = lint_fixture("exc001_cases.py", "repro.service.fixture_exc001")
        suppressed = [f for f in result.suppressed if f.rule == "EXC001"]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "suppressed_hit"

    def test_clean_unfiltered(self):
        result = lint_fixture("exc001_cases.py", "repro.service.fixture_exc001")
        for symbol in ("clean_reraise", "clean_counted", "clean_specific"):
            assert not any(f.symbol == symbol for f in result.findings), symbol

    def test_scope_excluded(self):
        result = lint_fixture(
            "exc001_cases.py", "repro.core.fixture_exc001", rule_ids=["EXC001"]
        )
        assert not rules_of(result, "EXC001")
