"""KER001 fixture: the service layer's place in the import DAG.

Linted twice: as ``repro.service.fixture_ker001`` (service may import the
platform but never the experiments layer above it) and as
``repro.platform.fixture_ker001`` (the platform must not import the
service layer — the Coordinator's ``server_factory`` callback keeps that
edge inverted).  Nothing here is executed; missing modules are irrelevant.
"""

from repro.experiments.loadtest import run_loadtest  # HIT under both names
from repro.platform.coordinator import Coordinator  # clean under service
from repro.service.gateway import ServiceGateway  # HIT under platform only
from repro.sim.clock import EventClock  # clean everywhere


def fixture(clock: EventClock) -> tuple:
    return Coordinator, ServiceGateway, run_loadtest
