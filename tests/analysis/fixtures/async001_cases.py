"""ASYNC001 fixture: blocking calls reachable from ``async def``.

Linted under ``repro.service.fixture_async001`` (in scope) and re-linted
under ``repro.sim.*`` to pin the scope boundary.  Cases: direct blocking
calls, a transitive sync-helper chain, suppressed hit, clean async code
(including blocking work correctly pushed off the loop).
"""

import asyncio
import subprocess
import time


def sync_leaf() -> None:
    time.sleep(0.1)  # fine in a sync def; flagged only via async chains


def sync_chain() -> None:
    sync_leaf()


async def positive_direct() -> None:
    time.sleep(0.5)  # HIT: blocks the event loop
    subprocess.run(["true"])  # HIT: sync subprocess wait
    with open("/tmp/fixture") as handle:  # HIT: sync file I/O
        handle.read()
    await asyncio.sleep(0)


async def positive_transitive() -> None:
    sync_chain()  # HIT: sync_chain -> sync_leaf -> time.sleep
    await asyncio.sleep(0)


async def suppressed_hit() -> None:
    # Justified: one-shot startup calibration before the loop serves traffic.
    time.sleep(0.0)  # reprolint: disable=ASYNC001
    await asyncio.sleep(0)


async def clean() -> None:
    await asyncio.sleep(0.01)
    await asyncio.to_thread(time.sleep, 0.01)  # blocking pushed off-loop
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, sync_leaf)  # function reference, not a call
