"""NUM001 fixture: float-literal equality in numeric code.

Linted as ``repro.stats.fixture_num001``.
"""

import math


def positive_hit(p: float, alpha: float) -> bool:
    exact = p == 1.0  # HIT: float-literal ==
    diverged = alpha != 2.0  # HIT: float-literal !=
    negated = p == -0.5  # HIT: negated float literal
    return exact or diverged or negated


def suppressed_hit(p: float) -> bool:
    # Exactness holds: ccdf() clamps to exactly 1.0 below k_min (np.where
    # writes the literal), so the bit pattern is contractual here.
    return p == 1.0  # reprolint: disable=NUM001


def clean(p: float, deadline: float, horizon: int) -> bool:
    close = math.isclose(p, 1.0, rel_tol=1e-9)
    integral = horizon == 1  # integer comparisons are fine
    ordered = deadline <= 0.5  # ordering against literals is fine
    return close or integral or ordered
