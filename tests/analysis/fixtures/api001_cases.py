"""API001 fixture: public-surface annotation completeness.

Linted as ``repro.core.fixture_api001``.
"""

from typing import Any, overload


def positive_hit(samples, k_min: float = 1.0):  # HIT: samples + return untyped
    return samples


class PublicEstimator:
    def fit(self, history) -> None:  # HIT: history untyped
        self.history = history

    def evaluate(self, *args, **kwargs) -> float:  # HIT: *args/**kwargs untyped
        return 0.0


def suppressed_hit(samples):  # reprolint: disable=API001
    return samples


def _private_helper(samples):  # clean: private functions are out of scope
    return samples


class _PrivateClass:
    def method(self, x):  # clean: private enclosing class
        return x


@overload
def sig(x: int) -> int: ...
@overload
def sig(x: str) -> str: ...
def sig(x: Any) -> Any:  # clean: implementation fully annotated
    return x


def clean(samples: list, k_min: float = 1.0) -> list:
    def inner(x):  # clean: nested functions are implementation detail
        return x

    return inner(samples)
