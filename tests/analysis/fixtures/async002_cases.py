"""ASYNC002 fixture: coroutine results must be awaited/stored/gathered.

Linted under ``repro.service.fixture_async002``; the rule's scope is all
of ``repro``, so the exclusion case lints under a non-repro module name.
Cases: bare local coroutine call, bare asyncio factory, bare method
coroutine via ``self``, suppressed hit, clean (awaited / task-wrapped /
stored / sync calls).
"""

import asyncio


async def notify() -> None:
    await asyncio.sleep(0)


async def positive_hits() -> None:
    notify()  # HIT: coroutine built and dropped
    asyncio.sleep(0.5)  # HIT: known awaitable factory, never awaited
    await notify()


class Server:
    async def beat(self) -> None:
        await asyncio.sleep(0)

    async def run(self) -> None:
        self.beat()  # HIT: method coroutine dropped
        await self.beat()


async def suppressed_hit() -> None:
    # Justified: deliberate fire-and-forget in a shutdown-path smoke shim.
    notify()  # reprolint: disable=ASYNC002
    await asyncio.sleep(0)


def sync_helper() -> None:
    return None


async def clean() -> None:
    await notify()
    pending = notify()  # stored, awaited below
    task = asyncio.create_task(notify())
    await asyncio.gather(task, pending)
    sync_helper()  # bare sync call is fine
