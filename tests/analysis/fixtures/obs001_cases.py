"""OBS001 fixture: None-guards around observability handles.

Linted as ``repro.platform.fixture_obs001``.
"""

from typing import Optional


class Instrumented:
    def __init__(self, observability: Optional[object] = None) -> None:
        if observability is not None:  # HIT: None-check on obs handle
            self._obs = observability
        self.obs = observability

    def record(self, value: float) -> None:
        if self.obs:  # HIT: truthiness guard on obs handle
            pass
        if self._obs is None:  # reprolint: disable=OBS001
            # Suppressed: demonstrating the escape hatch only.
            pass

    def clean(self, value: float, tracer: object) -> None:
        # The facade pattern: resolve once, call unconditionally.
        tracer_span = getattr(tracer, "span", None)
        if value > 0:  # plain numeric guard, not an obs handle
            pass
        del tracer_span
