"""EXC001 fixture: broad excepts in handler code re-raise or count.

Linted under ``repro.service.fixture_exc001`` (in scope) and re-linted
under ``repro.core.*`` for the scope boundary.  Cases: swallowed broad
except, bare except, broad member of a tuple, suppressed hit, and the
three sanctioned shapes (re-raise, counter increment, specific types).
"""


def positive_swallow(handler) -> None:
    try:
        handler()
    except Exception:  # HIT: swallowed without a trace
        pass


def positive_bare(handler) -> object:
    try:
        return handler()
    except:  # noqa: E722  HIT: bare except
        return None


def positive_tuple(handler) -> None:
    try:
        handler()
    except (ValueError, Exception) as exc:  # HIT: tuple hides a broad catch
        del exc


def suppressed_hit(handler) -> None:
    try:
        handler()
    except Exception:  # reprolint: disable=EXC001
        # Justified: probe used only to detect capability, never on the
        # dispatch path.
        pass


def clean_reraise(handler) -> None:
    try:
        handler()
    except Exception:
        raise


def clean_counted(handler, errors) -> None:
    try:
        handler()
    except Exception:
        errors.labels(reason="handler").inc()


def clean_specific(handler) -> None:
    try:
        handler()
    except (ValueError, KeyError):
        pass
