"""DET003 fixture: arithmetic seed derivation.

Linted as ``repro.dist.fixture_det003`` — the shard-fanout package is in
scope precisely because it hands seeds to spawned workers.
"""

import random

import numpy as np
from numpy.random import SeedSequence

from repro.sim.rng import RngRegistry


def positive_hit(seed: int, offset: int) -> None:
    np.random.default_rng(seed * 1_000_003 + offset)  # HIT: the fork bug
    SeedSequence(entropy=seed + offset)  # HIT: keyword seed material
    np.random.RandomState(seed=seed ^ offset)  # HIT: xor mixing collides too
    random.Random(seed << 1)  # HIT: stdlib constructor
    RngRegistry(seed=seed * 31 + offset)  # HIT: registry constructor by name


def suppressed_hit(seed: int) -> np.random.Generator:
    # Justified: fixture demonstrating the suppression syntax only.
    return np.random.default_rng(seed + 1)  # reprolint: disable=DET003


def clean(seed: int, offset: int) -> RngRegistry:
    # Lineage-threaded spawning: collision-free by construction.
    registry = RngRegistry(seed=seed).fork(offset)
    np.random.default_rng(SeedSequence(entropy=seed, spawn_key=(offset,)))
    # Arithmetic behind a call boundary feeds a draw, not a seed derivation.
    np.random.default_rng(registry.stream("matcher").integers(1 << 31))
    return registry
