"""DET002 fixture: RNG threading violations.

Linted as ``repro.platform.fixture_det002``.
"""

import numpy as np

MODULE_RNG = np.random.default_rng(7)  # HIT: module-scope generator


class Component:
    class_rng = np.random.default_rng(11)  # HIT: class-scope generator

    def draw_legacy(self) -> float:
        return float(np.random.rand())  # HIT: legacy global-state API

    def shuffle_legacy(self, items: list) -> None:
        np.random.shuffle(items)  # HIT: legacy global-state API


def suppressed_hit() -> float:
    # Justified: fixture demonstrating the suppression syntax only.
    return float(np.random.uniform())  # reprolint: disable=DET002


def clean(rng: np.random.Generator) -> float:
    # Threaded generator: created per-run by sim.rng, passed explicitly.
    local = np.random.default_rng(rng.integers(1 << 31))
    return float(local.normal())
