"""KER001 fixture: kernels importing upward.

Linted as ``repro.core.kernels.fixture_ker001``.  The imports reference
project-internal layers by absolute name; nothing here is ever executed (the
linter never imports fixtures), so missing modules are irrelevant.
"""

from typing import TYPE_CHECKING

import numpy as np  # clean: third-party numeric dep is the kernels' contract

from repro.platform.scheduling import SchedulingComponent  # HIT: upward import
from repro.sim.engine import Engine  # reprolint: disable=KER001

if TYPE_CHECKING:
    # clean: annotation-only imports cannot create runtime cycles
    from repro.obs.runtime import Observability


def kernel(weights: np.ndarray) -> np.ndarray:
    return weights * 2.0
