"""ASYNC003 fixture: check-then-act staleness across await points.

Linted under ``repro.service.fixture_async003`` (in scope) and re-linted
under ``repro.sim.*`` for the scope boundary.  Cases: stale inbox pop,
stale task-phase write, stale while-guard write, plus the two sanctioned
shapes (re-test on the resume edge; mutate before suspending), a
suppressed hit, and unguarded mutation (clean).
"""

import asyncio


class RegionState:
    def __init__(self) -> None:
        self._inbox = {}
        self._running = True

    async def positive_pop(self, worker_id: int) -> None:
        if worker_id in self._inbox:
            await asyncio.sleep(0.01)
            self._inbox.pop(worker_id)  # HIT: guard stale on the resume edge

    async def positive_phase(self, task) -> None:
        if task.phase is not None:
            await asyncio.sleep(0.01)
            task.phase = "done"  # HIT: guarded attribute write after await

    async def positive_while(self) -> None:
        while self._running:
            await asyncio.sleep(0.01)
            self._running = False  # HIT: guard read before the suspension

    async def revalidated(self, worker_id: int) -> None:
        if worker_id in self._inbox:
            await asyncio.sleep(0.01)
            if worker_id in self._inbox:  # re-test on the resume edge
                self._inbox.pop(worker_id)

    async def mutate_before_await(self, worker_id: int) -> None:
        if worker_id in self._inbox:
            self._inbox.pop(worker_id)  # mutation precedes the suspension
            await asyncio.sleep(0.01)

    async def suppressed_hit(self, worker_id: int) -> None:
        if worker_id in self._inbox:
            await asyncio.sleep(0.01)
            # Justified: pop(key, None) is idempotent under the race.
            self._inbox.pop(worker_id, None)  # reprolint: disable=ASYNC003

    async def clean(self) -> None:
        await asyncio.sleep(0.01)
        self._inbox = {}  # no guard protects this write
