"""DET001 fixture: wall-clock / unseeded RNG in deterministic code.

Linted under the module name ``repro.core.fixture_det001`` (in DET001's
scope), and re-linted as ``repro.service.*`` / ``repro.experiments.*``
to pin the wall-clock carve-out (RNG checks still apply there).  Cases:
positive hits, suppressed hit, clean.
"""

import time
from datetime import datetime
from time import perf_counter as pc

import numpy as np


def positive_hit() -> float:
    stamp = time.time()  # HIT: wall clock
    stamp += datetime.now().timestamp()  # HIT: wall clock via from-import
    stamp += pc()  # HIT: aliased from-import of perf_counter
    rng = np.random.default_rng()  # HIT: argless → OS entropy
    np.random.seed(0)  # HIT: global seeding
    return stamp + rng.random()


def loop_clock_hit(loop) -> float:
    stamp = loop.time()  # HIT: event-loop clock read outside repro.service
    stamp += self_like._event_loop.time()  # HIT: attribute receiver  # noqa: F821
    return stamp


def suppressed_hit() -> float:
    # Justified: profiling-only measurement, never fed into sim state.
    return time.perf_counter()  # reprolint: disable=DET001


def clean(rng: np.random.Generator, now: float) -> float:
    seeded = np.random.default_rng(123)  # seeded construction is fine
    return now + rng.random() + seeded.random()
