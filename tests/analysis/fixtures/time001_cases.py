"""TIME001 fixture: sim-time and wall-clock values must not mix.

Linted under ``repro.service.fixture_time001`` (wall-clock reads are
legitimate there, so DET001 stays quiet and TIME001 isolates the mixing
bug).  The rule's scope is all of ``repro``; the exclusion case lints
under a non-repro module name.  Cases: direct arithmetic mix, ordering
comparison, propagation through locals, branch-join may-mix, suppressed
hit, single-domain clean code, and a conversion at a call boundary.
"""

import asyncio
import time


def positive_direct(clock, loop) -> float:
    deadline = clock.now + 5.0
    return deadline - loop.time()  # HIT: sim minus wall


def positive_compare(clock) -> bool:
    return clock.now < time.monotonic()  # HIT: ordering across domains


def positive_through_locals(engine, loop) -> float:
    start = engine.now
    elapsed = loop.time()
    budget = start + 1.0
    return budget - elapsed  # HIT: labels carried through locals


async def positive_branch_join(runtime, flag: bool) -> float:
    if flag:
        stamp = runtime.now
    else:
        stamp = asyncio.get_running_loop().time()
    return stamp - time.monotonic()  # HIT: may-sim joined with wall


def suppressed_hit(clock, loop) -> float:
    # Justified: diagnostic epoch-offset log line, never fed to deadlines.
    return clock.now - loop.time()  # reprolint: disable=TIME001


def clean_sim_only(clock) -> float:
    horizon = clock.now + 5.0
    return min(horizon, clock.now + 1.0)


def clean_wall_only(loop) -> float:
    origin = loop.time()
    return loop.time() - origin


def to_sim(value: float) -> float:
    return value * 1.0


def clean_boundary(clock, loop) -> float:
    mapped = to_sim(loop.time())  # explicit conversion severs the label
    return mapped + clock.now
