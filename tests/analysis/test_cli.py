"""CLI contract: exit codes, text/json output, baseline flags, rule
selection, --list-rules/--explain, and the `repro.experiments lint` alias."""

import json

from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

DIRTY = "import time\n\n\ndef f() -> float:\n    return time.time()\n"
CLEAN = "def f(x: int) -> int:\n    return x + 1\n"


def make_pkg(tmp_path, source, name="clockish.py"):
    """A tiny repro.sim package so scope-sensitive rules fire."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / name).write_text(source)
    return pkg / name


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        make_pkg(tmp_path, CLEAN)
        assert main([str(tmp_path), "--no-baseline"]) == EXIT_CLEAN
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        make_pkg(tmp_path, DIRTY)
        assert main([str(tmp_path), "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "1 new finding(s) [DET001:1]" in out

    def test_missing_path_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_usage_error(self, tmp_path, capsys):
        make_pkg(tmp_path, CLEAN)
        assert main([str(tmp_path), "--rule", "NOPE999"]) == EXIT_USAGE

    def test_parse_error_exits_one(self, tmp_path, capsys):
        make_pkg(tmp_path, "def broken(:\n")
        assert main([str(tmp_path), "--no-baseline"]) == EXIT_FINDINGS
        assert "PARSE" in capsys.readouterr().out


class TestFormats:
    def test_json_payload_shape(self, tmp_path, capsys):
        make_pkg(tmp_path, DIRTY)
        code = main([str(tmp_path), "--no-baseline", "--format", "json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 3
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["findings"][0]["fingerprint"]
        assert "DET001" in payload["rules"]
        assert payload["stale_baseline_entries"] == 0

    def test_output_file(self, tmp_path, capsys):
        make_pkg(tmp_path, DIRTY)
        report = tmp_path / "report.json"
        main([str(tmp_path), "--no-baseline", "--format", "json", "--output", str(report)])
        assert json.loads(report.read_text())["findings"]
        assert capsys.readouterr().out == ""

    def test_show_suppressed(self, tmp_path, capsys):
        src = "import time\n\n\ndef f() -> float:\n    return time.time()  # reprolint: disable=DET001\n"
        make_pkg(tmp_path, src)
        assert main([str(tmp_path), "--no-baseline", "--show-suppressed"]) == EXIT_CLEAN
        assert "(suppressed inline)" in capsys.readouterr().out


class TestBaselineFlow:
    def test_write_then_gate_then_new_finding(self, tmp_path, capsys):
        target = make_pkg(tmp_path, DIRTY)
        baseline = tmp_path / DEFAULT_BASELINE_NAME

        assert main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == EXIT_CLEAN
        assert baseline.exists()
        capsys.readouterr()

        # Baselined finding no longer gates...
        assert main([str(tmp_path), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "1 baselined" in capsys.readouterr().out

        # ...but a brand-new violation still does.
        target.write_text(DIRTY + "\n\ndef g() -> float:\n    return time.monotonic()\n")
        assert main([str(tmp_path), "--baseline", str(baseline)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "time.monotonic" in out
        assert "1 baselined" in out

    def test_stale_entries_reported(self, tmp_path, capsys):
        target = make_pkg(tmp_path, DIRTY)
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        target.write_text(CLEAN)
        assert main([str(tmp_path), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "stale baseline entr" in capsys.readouterr().out

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        make_pkg(tmp_path, CLEAN)
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        baseline.write_text("not json at all")
        assert main([str(tmp_path), "--baseline", str(baseline)]) == EXIT_USAGE
        assert "bad baseline" in capsys.readouterr().err

    def test_default_baseline_discovered_from_path(self, tmp_path, capsys):
        make_pkg(tmp_path, DIRTY)
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        # No --baseline flag: found by walking up from the linted path.
        assert main([str(tmp_path)]) == EXIT_CLEAN


class TestRuleSelection:
    def test_single_rule_filter(self, tmp_path, capsys):
        src = "import time\n\n\ndef f(p: float) -> bool:\n    time.time()\n    return p == 1.0\n"
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "m.py").write_text(src)
        assert main([str(tmp_path), "--no-baseline", "--rule", "NUM001"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "NUM001" in out
        assert "DET001" not in out


class TestDocsCommands:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in (
            "DET001",
            "DET002",
            "DET003",
            "NUM001",
            "OBS001",
            "KER001",
            "API001",
        ):
            assert rule_id in out

    def test_explain(self, capsys):
        assert main(["--explain", "DET001"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "reprolint: disable=DET001" in out

    def test_explain_unknown(self, capsys):
        assert main(["--explain", "NOPE999"]) == EXIT_USAGE


class TestExperimentsAlias:
    def test_lint_subcommand_dispatches(self, capsys):
        from repro.experiments.cli import main as experiments_main

        assert experiments_main(["lint", "--list-rules"]) == EXIT_CLEAN
        assert "DET001" in capsys.readouterr().out
