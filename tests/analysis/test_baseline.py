"""Baseline lifecycle: write/load roundtrip, partition, stale detection,
and the gating semantics (baselined findings never gate, new ones do)."""

import json

import pytest

from repro.analysis import lint_source, load_baseline, write_baseline
from repro.analysis.baseline import (
    BASELINE_VERSION,
    DEFAULT_BASELINE_NAME,
    Baseline,
    find_default_baseline,
)

DIRTY = "import time\n\n\ndef f() -> float:\n    return time.time()\n"


def dirty_findings():
    return lint_source(DIRTY, module="repro.sim.m", path="src/repro/sim/m.py").findings


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        findings = dirty_findings()
        path = tmp_path / DEFAULT_BASELINE_NAME
        baseline = write_baseline(path, findings)
        assert findings[0] in baseline
        data = json.loads(path.read_text())
        assert data["version"] == BASELINE_VERSION
        assert data["findings"][0]["rule"] == "DET001"
        reloaded = load_baseline(path)
        assert reloaded.fingerprints == baseline.fingerprints

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_NAME
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="unsupported baseline format"):
            load_baseline(path)

    def test_load_rejects_non_dict(self, tmp_path):
        path = tmp_path / DEFAULT_BASELINE_NAME
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_baseline(path)


class TestPartition:
    def test_baselined_findings_split_from_new(self, tmp_path):
        findings = dirty_findings()
        baseline = write_baseline(tmp_path / DEFAULT_BASELINE_NAME, findings)
        new, baselined = baseline.partition(findings)
        assert new == []
        assert baselined == findings

    def test_new_finding_still_gates(self, tmp_path):
        baseline = write_baseline(tmp_path / DEFAULT_BASELINE_NAME, dirty_findings())
        grown = DIRTY + "\n\ndef g() -> float:\n    return time.monotonic()\n"
        findings = lint_source(grown, module="repro.sim.m", path="src/repro/sim/m.py").findings
        new, baselined = baseline.partition(findings)
        assert len(baselined) == 1  # the original time.time() site
        assert len(new) == 1
        assert "time.monotonic" in new[0].message

    def test_edited_line_invalidates_entry(self, tmp_path):
        baseline = write_baseline(tmp_path / DEFAULT_BASELINE_NAME, dirty_findings())
        edited = DIRTY.replace("return time.time()", "return time.time() * 2.0")
        findings = lint_source(edited, module="repro.sim.m", path="src/repro/sim/m.py").findings
        new, baselined = baseline.partition(findings)
        assert baselined == []
        assert len(new) == 1
        assert baseline.stale_fingerprints(findings) == baseline.fingerprints

    def test_stale_entries_after_fix(self, tmp_path):
        baseline = write_baseline(tmp_path / DEFAULT_BASELINE_NAME, dirty_findings())
        clean = lint_source("x = 1\n", module="repro.sim.m", path="src/repro/sim/m.py").findings
        assert baseline.stale_fingerprints(clean) == baseline.fingerprints

    def test_empty_baseline_gates_everything(self):
        new, baselined = Baseline().partition(dirty_findings())
        assert baselined == []
        assert len(new) == 1


class TestDiscovery:
    def test_find_default_walks_up(self, tmp_path):
        (tmp_path / DEFAULT_BASELINE_NAME).write_text("{}")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_default_baseline(nested) == tmp_path / DEFAULT_BASELINE_NAME

    def test_find_default_missing(self, tmp_path):
        nested = tmp_path / "deeply" / "nested"
        nested.mkdir(parents=True)
        found = find_default_baseline(nested)
        # Only acceptable non-None hit is a baseline above tmp_path (e.g. the
        # repo's own, if tmp_path lives under it) — never inside tmp_path.
        if found is not None:
            assert not str(found).startswith(str(tmp_path))
