"""Unit tests for the matcher-latency cost models."""

import pytest

from repro.platform.cost import (
    KAPPA_GREEDY,
    BatchShape,
    MeasuredCost,
    PaperCalibratedCost,
    ZeroCost,
)


class TestBatchShape:
    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            BatchShape(n_workers=-1, n_tasks=1, n_edges=1)


class TestZeroCost:
    def test_always_zero(self):
        cost = ZeroCost()
        shape = BatchShape(n_workers=1000, n_tasks=1000, n_edges=10**6, cycles=1000)
        assert cost.seconds("greedy", shape) == 0.0
        assert cost.seconds("react", shape) == 0.0


class TestPaperCalibration:
    """The model must hit the paper's Fig. 3 anchor points exactly."""

    def _full_graph_shape(self, cycles=0):
        return BatchShape(n_workers=1000, n_tasks=1000, n_edges=10**6, cycles=cycles)

    def test_greedy_anchor(self):
        cost = PaperCalibratedCost()
        assert cost.seconds("greedy", self._full_graph_shape()) == pytest.approx(99.7)

    def test_react_1000_cycles_anchor(self):
        cost = PaperCalibratedCost()
        assert cost.seconds("react", self._full_graph_shape(cycles=1000)) == pytest.approx(12.0)

    def test_react_3000_cycles_anchor(self):
        cost = PaperCalibratedCost()
        assert cost.seconds("react", self._full_graph_shape(cycles=3000)) == pytest.approx(45.0)

    def test_metropolis_equals_react(self):
        """Fig. 3: 'Metropolis and REACT algorithms needed almost the same
        time to execute, for the same cycle parameter'."""
        cost = PaperCalibratedCost()
        shape = self._full_graph_shape(cycles=2000)
        assert cost.seconds("metropolis", shape) == cost.seconds("react", shape)

    def test_interpolation_monotone(self):
        cost = PaperCalibratedCost()
        values = [
            cost.seconds(
                "react", BatchShape(1000, 1000, 10**6, cycles=c)
            )
            for c in (0, 500, 1000, 2000, 3000, 6000)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_extrapolates_beyond_last_knot(self):
        cost = PaperCalibratedCost()
        at_3000 = cost.seconds("react", self._full_graph_shape(cycles=3000))
        at_6000 = cost.seconds("react", self._full_graph_shape(cycles=6000))
        assert at_6000 == pytest.approx(at_3000 + 3 * 16.5)

    def test_greedy_scales_with_v_times_e(self):
        cost = PaperCalibratedCost()
        small = cost.seconds("greedy", BatchShape(100, 10, 1000))
        assert small == pytest.approx(KAPPA_GREEDY * 10 * 1000)

    def test_uniform_negligible(self):
        cost = PaperCalibratedCost()
        assert cost.seconds("uniform", BatchShape(1000, 1000, 10**6)) < 0.01

    def test_empty_graph_costs_overhead_only(self):
        cost = PaperCalibratedCost(batch_overhead=0.2)
        assert cost.seconds("react", BatchShape(10, 5, 0)) == pytest.approx(0.2)

    def test_hardware_factor_scales(self):
        base = PaperCalibratedCost()
        doubled = PaperCalibratedCost(hardware_factor=2.0)
        shape = self._full_graph_shape()
        assert doubled.seconds("greedy", shape) == pytest.approx(
            2 * base.seconds("greedy", shape)
        )

    def test_overhead_added_per_batch(self):
        with_oh = PaperCalibratedCost(batch_overhead=0.5)
        without = PaperCalibratedCost()
        shape = BatchShape(100, 10, 1000)
        assert with_oh.seconds("greedy", shape) == pytest.approx(
            without.seconds("greedy", shape) + 0.5
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            PaperCalibratedCost().seconds("quantum", BatchShape(1, 1, 1))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PaperCalibratedCost(hardware_factor=0)
        with pytest.raises(ValueError):
            PaperCalibratedCost(batch_overhead=-1)

    def test_hungarian_and_sorted_greedy_have_costs(self):
        cost = PaperCalibratedCost()
        shape = self._full_graph_shape()
        assert cost.seconds("hungarian", shape) > 0
        assert cost.seconds("sorted-greedy", shape) > 0


class TestMeasuredCost:
    def test_scales_measurement(self):
        cost = MeasuredCost(scale=3.0)
        assert cost.from_measurement(0.5) == 1.5

    def test_seconds_not_directly_usable(self):
        with pytest.raises(NotImplementedError):
            MeasuredCost().seconds("react", BatchShape(1, 1, 1))

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            MeasuredCost(scale=-1.0)
