"""Unit tests for the Profiling Component."""

import pytest

from repro.model.task import TaskCategory
from repro.model.worker import WorkerProfile
from repro.platform.profiling import ProfilingComponent


@pytest.fixture
def component():
    comp = ProfilingComponent()
    for i in range(3):
        comp.register(WorkerProfile(worker_id=i))
    return comp


class TestMembership:
    def test_register_and_lookup(self, component):
        assert len(component) == 3
        assert 1 in component
        assert component.get(1).worker_id == 1

    def test_duplicate_registration_rejected(self, component):
        with pytest.raises(ValueError, match="already registered"):
            component.register(WorkerProfile(worker_id=1))

    def test_deregister(self, component):
        component.deregister(1)
        assert 1 not in component
        with pytest.raises(KeyError):
            component.deregister(1)


class TestAvailability:
    def test_available_workers_order_stable(self, component):
        ids = [p.worker_id for p in component.available_workers()]
        assert ids == [0, 1, 2]

    def test_assignment_removes_from_available(self, component):
        component.record_assignment(1, task_id=10)
        assert [p.worker_id for p in component.available_workers()] == [0, 2]
        assert [p.worker_id for p in component.busy_workers()] == [1]

    def test_offline_excluded(self, component):
        component.get(0).online = False
        assert [p.worker_id for p in component.available_workers()] == [1, 2]


class TestCompletionRecording:
    def test_completion_frees_and_records(self, component):
        component.record_assignment(1, task_id=10)
        component.record_completion(
            1, execution_time=5.0, category=TaskCategory.GENERIC, positive_feedback=True
        )
        profile = component.get(1)
        assert profile.available
        assert profile.completed_tasks == 1
        assert profile.accuracy(TaskCategory.GENERIC) == 1.0

    def test_trained_count(self, component):
        for _ in range(3):
            component.record_assignment(2, task_id=1)
            component.record_completion(2, 5.0, TaskCategory.GENERIC, True)
        assert component.trained_count(min_history=3) == 1
        assert component.trained_count(min_history=4) == 0


class TestWithdrawal:
    def test_withdrawal_records_censored_observation(self, component):
        component.record_assignment(1, task_id=10)
        component.record_withdrawal(1, elapsed=42.0, release=False)
        profile = component.get(1)
        assert profile.censored_observations == 1
        assert profile.execution_times == [42.0]
        assert not profile.available  # still dawdling
        assert profile.current_task is None

    def test_withdrawal_with_release(self, component):
        component.record_assignment(1, task_id=10)
        component.record_withdrawal(1, elapsed=42.0, release=True)
        assert component.get(1).available


class TestDawdleRelease:
    def test_release_after_dawdle_only_when_detached(self, component):
        component.record_assignment(1, task_id=10)
        component.record_withdrawal(1, elapsed=5.0, release=False)
        component.release_after_dawdle(1)
        assert component.get(1).available

    def test_release_after_dawdle_noop_when_on_new_task(self, component):
        component.record_assignment(1, task_id=10)
        component.record_withdrawal(1, elapsed=5.0, release=True)
        component.record_assignment(1, task_id=11)
        component.release_after_dawdle(1)
        assert not component.get(1).available  # still on task 11

    def test_release_after_dawdle_unknown_worker_noop(self, component):
        component.release_after_dawdle(999)  # must not raise
