"""Tests for the cross-component invariant checker."""

import pytest

from repro.model.task import TaskPhase
from repro.platform.invariants import (
    InvariantMonitor,
    InvariantViolation,
    check_server_invariants,
)
from repro.platform.policies import react_policy, traditional_policy

from .helpers import abandoner_behavior, build_server, dawdler_behavior, submit


class TestCleanStates:
    def test_fresh_server_passes(self):
        engine, server = build_server(n_workers=3)
        check_server_invariants(server)

    def test_mid_run_states_pass(self):
        engine, server = build_server(n_workers=3)
        for _ in range(6):
            submit(server, engine)
        for horizon in (0.5, 2.0, 5.0, 20.0, 60.0):
            engine.run(until=horizon)
            check_server_invariants(server)

    def test_dawdler_run_passes(self):
        engine, server = build_server(n_workers=2, behavior=dawdler_behavior())
        for _ in range(4):
            submit(server, engine, deadline=50.0)
        for horizon in (10.0, 40.0, 80.0, 200.0):
            engine.run(until=horizon)
            check_server_invariants(server)

    def test_traditional_abandonment_passes(self):
        """Traditional + abandoners: task stays ASSIGNED while the worker is
        long gone — I4 must tolerate the one-way reference, and does,
        because I4 only constrains profiles that still claim a task."""
        engine, server = build_server(
            n_workers=1, behavior=abandoner_behavior(delay_cap=20.0),
            policy=traditional_policy(),
        )
        submit(server, engine, deadline=60.0)
        engine.run(until=100.0)
        check_server_invariants(server)


class TestViolationsDetected:
    def test_i1_phase_pool_mismatch(self):
        engine, server = build_server(n_workers=1)
        task = submit(server, engine)
        task.phase = TaskPhase.ASSIGNED  # lie: still in the unassigned pool
        with pytest.raises(InvariantViolation, match="I1"):
            check_server_invariants(server)

    def test_i2_unregistered_worker(self):
        engine, server = build_server(n_workers=1)
        task = submit(server, engine, deadline=600.0)
        engine.run(until=1.0)
        assert task.phase is TaskPhase.ASSIGNED
        server.profiling._profiles.pop(0)
        with pytest.raises(InvariantViolation, match="I2"):
            check_server_invariants(server)

    def test_i4_stale_profile_reference(self):
        engine, server = build_server(n_workers=2)
        submit(server, engine, deadline=600.0)
        engine.run(until=1.0)
        busy = next(p for p in server.profiling if p.current_task is not None)
        busy.current_task = 9999
        with pytest.raises(InvariantViolation, match="I4"):
            check_server_invariants(server)

    def test_i5_available_with_task(self):
        engine, server = build_server(n_workers=1)
        submit(server, engine, deadline=600.0)
        engine.run(until=1.0)
        profile = server.profiling.get(0)
        profile.available = True  # corrupt
        with pytest.raises(InvariantViolation, match="I5"):
            check_server_invariants(server)

    def test_i6_metric_corruption(self):
        engine, server = build_server(n_workers=1)
        server.metrics.completed_on_time = 99
        server.metrics.completed = 1
        with pytest.raises(InvariantViolation, match="I6"):
            check_server_invariants(server)

    def test_i7_lost_task(self):
        engine, server = build_server(
            n_workers=1, policy=react_policy(batch_threshold=10)
        )
        task = submit(server, engine)  # below threshold: stays queued
        # simulate a task silently vanishing from the pools
        server.task_management._unassigned.pop(task.task_id)
        with pytest.raises(InvariantViolation, match="I7"):
            check_server_invariants(server)

    def test_i7_disabled_for_adopting_servers(self):
        engine, server = build_server(
            n_workers=1, policy=react_policy(batch_threshold=10)
        )
        task = submit(server, engine)
        server.task_management._unassigned.pop(task.task_id)
        check_server_invariants(server, strict_accounting=False)


class TestMonitor:
    def test_periodic_audits(self):
        engine, server = build_server(n_workers=2)
        monitor = InvariantMonitor(engine, server, period=1.0).start()
        for _ in range(4):
            submit(server, engine)
        engine.run(until=30.0)
        assert monitor.audits == 30
        monitor.stop()

    def test_monitor_raises_through_engine(self):
        engine, server = build_server(n_workers=1)
        InvariantMonitor(engine, server, period=1.0).start()
        submit(server, engine, deadline=600.0)
        engine.run(until=0.5)
        server.profiling.get(0).available = True  # corrupt mid-run
        with pytest.raises(InvariantViolation):
            engine.run(until=2.0)

    def test_double_start_rejected(self):
        engine, server = build_server(n_workers=1)
        monitor = InvariantMonitor(engine, server).start()
        with pytest.raises(RuntimeError):
            monitor.start()
