"""Unit tests for scheduling policies."""

import pytest

from repro.core.matching.greedy import GreedyMatcher
from repro.core.matching.react import ReactMatcher
from repro.core.matching.uniform import UniformMatcher
from repro.core.weights import AccuracyWeight, ConstantWeight
from repro.platform.policies import (
    SchedulingPolicy,
    greedy_policy,
    metropolis_policy,
    react_policy,
    traditional_policy,
)


class TestPresets:
    def test_react_preset_matches_paper(self):
        policy = react_policy()
        assert policy.matcher_name == "react"
        assert policy.cycles == 1000
        assert policy.use_probabilistic_model
        assert policy.edge_probability_bound == 0.1
        assert policy.reassign_threshold == 0.1
        assert policy.min_history == 3
        assert policy.batch_threshold == 10
        assert not policy.assign_expired
        assert policy.expire_running_tasks

    def test_greedy_preset(self):
        policy = greedy_policy()
        assert policy.matcher_name == "greedy"
        assert policy.use_probabilistic_model  # paper: greedy also uses Eq. 2
        assert policy.charge_region_graph
        assert policy.batch_threshold == 1  # "triggered for each unassigned task"

    def test_traditional_preset(self):
        policy = traditional_policy()
        assert policy.matcher_name == "uniform"
        assert not policy.use_probabilistic_model
        assert policy.assign_expired
        assert not policy.expire_running_tasks  # "does not react to delays"

    def test_metropolis_preset(self):
        assert metropolis_policy(cycles=500).cycles == 500


class TestFactories:
    def test_build_matcher_types(self):
        assert isinstance(react_policy().build_matcher(), ReactMatcher)
        assert isinstance(greedy_policy().build_matcher(), GreedyMatcher)
        assert isinstance(traditional_policy().build_matcher(), UniformMatcher)

    def test_matcher_parameters_flow_through(self):
        matcher = react_policy(cycles=77).build_matcher()
        assert matcher.params.cycles == 77

    def test_build_weight_function(self):
        assert isinstance(react_policy().build_weight_function(), AccuracyWeight)
        assert isinstance(traditional_policy().build_weight_function(), ConstantWeight)

    def test_with_overrides(self):
        base = react_policy()
        derived = base.with_overrides(reassign_threshold=0.3)
        assert derived.reassign_threshold == 0.3
        assert base.reassign_threshold == 0.1
        assert derived.name == base.name


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(batch_threshold=0),
            dict(batch_period=0.0),
            dict(edge_probability_bound=1.5),
            dict(reassign_threshold=-0.1),
            dict(reassign_check_interval=0.0),
            dict(min_history=-1),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SchedulingPolicy(name="bad", **kwargs)
