"""Integration-grained unit tests for the REACT region server."""

import pytest

from repro.model.task import TaskPhase
from repro.platform.policies import react_policy, traditional_policy

from .helpers import (
    abandoner_behavior,
    build_server,
    dawdler_behavior,
    reliable_behavior,
    submit,
)


class TestHappyPath:
    def test_task_completes_on_time(self):
        engine, server = build_server(n_workers=2)
        task = submit(server, engine, deadline=60.0)
        engine.run(until=30.0)
        assert task.phase is TaskPhase.COMPLETED
        assert task.met_deadline
        assert server.metrics.completed_on_time == 1
        server.metrics.check_conservation()

    def test_worker_released_after_completion(self):
        engine, server = build_server(n_workers=1)
        submit(server, engine)
        engine.run(until=30.0)
        assert server.profiling.get(0).available

    def test_profile_records_execution(self):
        engine, server = build_server(n_workers=1)
        submit(server, engine)
        engine.run(until=30.0)
        profile = server.profiling.get(0)
        assert profile.completed_tasks == 1
        assert 2.0 <= profile.execution_times[0] <= 4.0

    def test_multiple_tasks_serialized_on_one_worker(self):
        engine, server = build_server(n_workers=1)
        tasks = [submit(server, engine, deadline=120.0) for _ in range(3)]
        engine.run(until=120.0)
        assert all(t.phase is TaskPhase.COMPLETED for t in tasks)
        # completions happen one at a time: 3 completions within ~12s + batch lag
        assert server.metrics.completed == 3

    def test_feedback_positive_for_perfect_quality(self):
        engine, server = build_server(n_workers=1, behavior=reliable_behavior(quality=1.0))
        submit(server, engine)
        engine.run(until=30.0)
        assert server.metrics.positive_feedbacks == 1

    def test_feedback_negative_for_zero_quality(self):
        engine, server = build_server(n_workers=1, behavior=reliable_behavior(quality=0.0))
        submit(server, engine)
        engine.run(until=30.0)
        assert server.metrics.completed == 1
        assert server.metrics.positive_feedbacks == 0


class TestDawdlersAndReassignment:
    def _train(self, server, engine, n=3, deadline=300.0):
        """Run n quick tasks through every worker to build history."""
        for _ in range(n):
            for _ in range(len(server.profiling)):
                submit(server, engine, deadline=deadline)
        engine.run(until=engine.now + 100.0)

    def test_trained_dawdler_task_reassigned(self):
        # Worker 0 reliable, builds history; then becomes effectively the
        # monitor's target when he dawdles.  We simulate by having one
        # dawdling worker among reliable ones after training.
        engine, server = build_server(n_workers=3)
        self._train(server, engine)
        trained = server.metrics.completed
        assert trained >= 9

        # Swap worker 0's behaviour to dawdling (the profile keeps its fast
        # history, so Eq. 2 will fire once he sits on a task too long).
        server._behaviors[0] = dawdler_behavior(delay_cap=130.0)
        server._behaviors[1] = dawdler_behavior(delay_cap=130.0)
        server._behaviors[2] = dawdler_behavior(delay_cap=130.0)
        task = submit(server, engine, deadline=90.0)
        engine.run(until=engine.now + 300.0)
        # the task was withdrawn at least once (Eq. 2 or expiry)
        assert task.assignments >= 2 or len(server.dynamic_assignment.withdrawals) > 0

    def test_abandoned_task_pulled_at_expiry(self):
        engine, server = build_server(
            n_workers=1, behavior=abandoner_behavior(delay_cap=130.0)
        )
        task = submit(server, engine, deadline=50.0)
        engine.run(until=45.0)
        assert task.phase is TaskPhase.ASSIGNED
        engine.run(until=engine.now + 20.0)
        # expiry pull happened; with only an abandoner available the task
        # churns, but it must not be stuck with the original worker
        assert server.metrics.expiry_returns >= 1

    def test_abandoner_released_at_walkaway(self):
        engine, server = build_server(
            n_workers=1,
            behavior=abandoner_behavior(delay_cap=30.0),
            policy=react_policy(batch_threshold=1, expire_running_tasks=False,
                                use_probabilistic_model=False),
        )
        submit(server, engine, deadline=600.0)
        engine.run(until=40.0)
        # worker walked away at 30 s: free again, task still "assigned"
        assert server.profiling.get(0).available
        assert server.task_management.assigned_count == 1

    def test_withdrawal_records_censored_history(self):
        engine, server = build_server(
            n_workers=1, behavior=abandoner_behavior(delay_cap=130.0)
        )
        submit(server, engine, deadline=40.0)
        engine.run(until=100.0)
        profile = server.profiling.get(0)
        assert profile.censored_observations >= 1


class TestTraditionalPolicy:
    def test_no_reassignment_ever(self):
        engine, server = build_server(
            n_workers=2,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=traditional_policy(),
        )
        task = submit(server, engine, deadline=60.0)
        for _ in range(12):
            submit(server, engine, deadline=60.0)
        engine.run(until=engine.now + 400.0)
        assert server.metrics.reassignments == 0
        assert server.metrics.expiry_returns == 0
        # dawdled tasks complete late rather than being rescued
        assert task.phase is TaskPhase.COMPLETED
        assert not task.met_deadline

    def test_abandoned_task_lost_forever(self):
        engine, server = build_server(
            n_workers=1,
            behavior=abandoner_behavior(),
            policy=traditional_policy(),
        )
        for _ in range(10):
            submit(server, engine, deadline=60.0)
        engine.run(until=engine.now + 1000.0)
        assert server.metrics.completed == 0


class TestWorkerChurn:
    def test_remove_idle_worker(self):
        engine, server = build_server(n_workers=2)
        server.remove_worker(1)
        assert len(server.profiling) == 1

    def test_remove_busy_worker_requeues_task(self):
        engine, server = build_server(n_workers=1)
        task = submit(server, engine, deadline=600.0)
        engine.run(until=1.0)
        assert task.phase is TaskPhase.ASSIGNED
        server.remove_worker(0)
        assert task.phase is TaskPhase.UNASSIGNED
        assert server.task_management.unassigned_count == 1

    def test_completion_of_removed_worker_is_noop(self):
        engine, server = build_server(n_workers=1)
        submit(server, engine, deadline=600.0)
        engine.run(until=1.0)
        server.remove_worker(0)
        engine.run(until=60.0)  # pending completion event fires harmlessly
        server.metrics.check_conservation()


class TestLifecycleGuards:
    def test_double_start_rejected(self):
        engine, server = build_server()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_stop_then_start_again(self):
        engine, server = build_server()
        server.stop()
        server.start()
