"""Unit tests for the Dynamic Assignment Component (Eq. 2 monitor)."""

import pytest

from repro.model.task import TaskCategory, TaskPhase
from repro.platform.policies import react_policy, traditional_policy

from .helpers import build_server, dawdler_behavior, submit


def _train_profile(server, worker_id, times):
    """Inject a completion history directly into a worker's profile."""
    profile = server.profiling.get(worker_id)
    for t in times:
        profile.record_completion(t, TaskCategory.GENERIC, True)


class TestMonitorSweep:
    def test_trained_dawdler_withdrawn_before_deadline(self):
        engine, server = build_server(
            n_workers=1,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=react_policy(batch_threshold=1, batch_period=1000.0),
        )
        _train_profile(server, 0, [3.0, 4.0, 5.0])
        task = submit(server, engine, deadline=90.0)
        engine.run(until=80.0)
        withdrawals = server.dynamic_assignment.withdrawals
        # the only candidate worker is the dawdler, so the task cycles
        # through pull -> re-assign -> pull; every pull is recorded
        assert len(withdrawals) >= 1
        w = withdrawals[0]
        assert w.worker_id == 0
        assert w.task_id == task.task_id
        assert w.probability < 0.1
        # first pull lands well before the deadline, leaving rescue time
        assert w.time < 90.0
        assert task.assignments >= 1

    def test_untrained_worker_never_withdrawn(self):
        engine, server = build_server(
            n_workers=1,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=react_policy(batch_threshold=1, batch_period=1000.0),
        )
        submit(server, engine, deadline=90.0)
        engine.run(until=85.0)
        assert len(server.dynamic_assignment.withdrawals) == 0

    def test_monitor_disabled_under_traditional(self):
        engine, server = build_server(
            n_workers=1,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=traditional_policy(),
        )
        _train_profile(server, 0, [3.0, 4.0, 5.0])
        submit(server, engine, deadline=90.0)
        engine.run(until=200.0)
        assert len(server.dynamic_assignment.withdrawals) == 0

    def test_withdrawn_task_returns_to_queue(self):
        engine, server = build_server(
            n_workers=1,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=react_policy(batch_threshold=5, batch_period=1000.0),
        )
        _train_profile(server, 0, [3.0, 4.0, 5.0])
        task = submit(server, engine, deadline=90.0)
        # manually trigger a batch so the single task is assigned
        server.scheduling.periodic_trigger(engine.now)
        engine.run(until=60.0)
        if server.dynamic_assignment.withdrawals:
            assert task.phase in (TaskPhase.UNASSIGNED, TaskPhase.EXPIRED)

    def test_threshold_one_pulls_immediately(self):
        """threshold=1.0 means any non-certain completion is pulled at the
        first sweep after assignment."""
        engine, server = build_server(
            n_workers=1,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=react_policy(
                batch_threshold=1, batch_period=1000.0, reassign_threshold=1.0
            ),
        )
        _train_profile(server, 0, [3.0, 4.0, 5.0])
        submit(server, engine, deadline=90.0)
        engine.run(until=3.0)
        assert len(server.dynamic_assignment.withdrawals) >= 1
        assert server.dynamic_assignment.withdrawals[0].time <= 2.0

    def test_sweep_returns_pull_count(self):
        engine, server = build_server(
            n_workers=2,
            behavior=dawdler_behavior(delay_cap=130.0),
            policy=react_policy(
                batch_threshold=1, batch_period=1000.0, reassign_threshold=1.0
            ),
        )
        for wid in (0, 1):
            _train_profile(server, wid, [3.0, 4.0, 5.0])
        submit(server, engine, deadline=90.0)
        submit(server, engine, deadline=90.0)
        engine.run(until=0.5)  # assignments published, monitor not yet fired
        pulled = server.dynamic_assignment.sweep(engine.now + 1.0)
        assert pulled == 2


class TestLifecycle:
    def test_double_start_rejected(self):
        engine, server = build_server()
        with pytest.raises(RuntimeError):
            server.dynamic_assignment.start()

    def test_stop_is_idempotent(self):
        engine, server = build_server()
        server.dynamic_assignment.stop()
        server.dynamic_assignment.stop()
