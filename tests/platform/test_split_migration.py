"""Tests for region splitting with worker/task migration (§V-D remedy)."""

import pytest

from repro.model.region import Region
from repro.model.task import Task, TaskPhase
from repro.model.worker import WorkerProfile
from repro.platform.coordinator import Coordinator
from repro.platform.cost import PaperCalibratedCost, ZeroCost
from repro.platform.policies import react_policy
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

from .helpers import reliable_behavior


def _coordinator(overload_limit=3, cost=None):
    engine = Engine()
    coordinator = Coordinator(
        engine=engine,
        policy=react_policy(batch_threshold=50, batch_period=1000.0),
        regions=[Region(0, 10, 0, 10)],
        rng=RngRegistry(seed=8),
        cost_model=cost if cost is not None else ZeroCost(),
        overload_queue_limit=overload_limit,
    )
    return engine, coordinator


def _task(lat, lon, deadline=600.0):
    return Task(latitude=lat, longitude=lon, deadline=deadline)


class TestSplitMechanics:
    def test_old_server_keeps_one_half(self):
        engine, coordinator = _coordinator()
        original = coordinator.servers[0]
        # alternate halves so the split relieves the queue evenly
        for lat in (2.0, 8.0, 2.0, 8.0, 2.0):
            coordinator.submit_task(_task(lat, 5.0))
        assert coordinator.splits_performed == 1
        assert original in coordinator.servers
        assert len(coordinator.servers) == 2

    def test_queued_tasks_migrate_to_their_half(self):
        engine, coordinator = _coordinator(overload_limit=5)
        original = coordinator.servers[0]
        # 3 tasks in the lower half, 3 in the upper half; limit 5 trips on
        # the 6th submission -> split along latitude (square region).
        for lat in (1.0, 2.0, 3.0, 7.0, 8.0, 9.0):
            coordinator.submit_task(_task(lat, 5.0))
        assert coordinator.splits_performed == 1
        new_server = next(s for s in coordinator.servers if s is not original)
        assert original.task_management.unassigned_count == 3
        assert new_server.task_management.unassigned_count == 3

    def test_received_count_preserved_across_split(self):
        engine, coordinator = _coordinator(overload_limit=4)
        for i in range(8):
            coordinator.submit_task(_task(1.0 + i, 5.0))
        summary = coordinator.aggregate_summary()
        assert summary["received"] == 8

    def test_idle_workers_migrate_by_location(self):
        engine, coordinator = _coordinator(overload_limit=3)
        original = coordinator.servers[0]
        low = WorkerProfile(worker_id=0, latitude=1.0, longitude=5.0)
        high = WorkerProfile(worker_id=1, latitude=9.0, longitude=5.0)
        coordinator.add_worker(low, reliable_behavior())
        coordinator.add_worker(high, reliable_behavior())
        for lat in (2.0, 8.0, 2.0, 8.0, 2.0):
            coordinator.submit_task(_task(lat, 5.0))
        assert coordinator.splits_performed >= 1
        new_server = next(s for s in coordinator.servers if s is not original)
        # the high-latitude worker belongs to the new (upper) half
        assert 1 in new_server.profiling
        assert 0 in original.profiling
        assert new_server.profiling.get(1).online

    def test_busy_workers_stay_on_old_server(self):
        engine, coordinator = _coordinator(overload_limit=10)
        original = coordinator.servers[0]
        high = WorkerProfile(worker_id=1, latitude=9.0, longitude=5.0)
        coordinator.add_worker(high, reliable_behavior(min_time=50.0, max_time=60.0))
        coordinator.submit_task(_task(9.0, 5.0))
        original.scheduling.periodic_trigger(engine.now)
        engine.run(until=1.0)  # worker now busy
        assert not original.profiling.get(1).available
        for _ in range(11):
            coordinator.submit_task(_task(1.0, 5.0))
        # the point load cascades (all tasks land in one ever-smaller half),
        # bounded by max_splits_per_submit
        assert 1 <= coordinator.splits_performed <= 4
        assert 1 in original.profiling  # busy worker did not migrate

    def test_migrated_tasks_complete_on_new_server(self):
        engine, coordinator = _coordinator(overload_limit=3)
        original = coordinator.servers[0]
        high = WorkerProfile(worker_id=1, latitude=9.0, longitude=5.0)
        coordinator.add_worker(high, reliable_behavior())
        tasks = [_task(8.0 + 0.2 * i, 5.0) for i in range(5)]
        for t in tasks:
            coordinator.submit_task(t)
        # all load sits in one half, so splits may cascade; the worker's
        # server (wherever worker 1 ended up) must complete migrated tasks
        assert coordinator.splits_performed >= 1
        owner = next(s for s in coordinator.servers if 1 in s.profiling)
        assert owner is not original
        # the cascade scatters the queue across the split-off regions, but
        # no task is lost and the worker's own region holds at least one
        total_queued = sum(s.task_management.unassigned_count for s in coordinator.servers)
        assert total_queued == 5
        assert owner.task_management.unassigned_count >= 1
        # fire a batch on the owning server (the test policy's threshold is
        # deliberately high so splits, not batches, drive the scenario)
        owner.scheduling.periodic_trigger(engine.now)
        engine.run(until=120.0)
        assert owner.metrics.completed >= 1
        assert any(t.phase is TaskPhase.COMPLETED for t in tasks)

    def test_batch_in_flight_survives_migration(self):
        """A worker matched by a batch who migrates before publication must
        not crash the publish path; his task rejoins the queue."""
        engine, coordinator = _coordinator(
            overload_limit=6, cost=PaperCalibratedCost(batch_overhead=5.0)
        )
        original = coordinator.servers[0]
        high = WorkerProfile(worker_id=1, latitude=9.0, longitude=5.0)
        coordinator.add_worker(high, reliable_behavior())
        task = _task(9.0, 5.0)
        coordinator.submit_task(task)
        original.scheduling.periodic_trigger(engine.now)  # batch in flight (5 s)
        engine.run(until=1.0)
        for _ in range(7):  # force a split mid-batch
            coordinator.submit_task(_task(1.0, 5.0))
        assert coordinator.splits_performed >= 1
        engine.run(until=300.0)  # publish fires; must not raise


class TestAggregateAverages:
    def test_averages_are_weighted_not_summed(self):
        engine, coordinator = _coordinator(overload_limit=None)
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0),
            reliable_behavior(min_time=2.0, max_time=2.0),
        )
        coordinator.submit_task(_task(5.0, 5.0))
        coordinator.servers[0].scheduling.periodic_trigger(engine.now)
        engine.run(until=60.0)
        summary = coordinator.aggregate_summary()
        # single completion of exactly 2 s: a summed average would only be
        # wrong with multiple servers, but the weighted path must return
        # the plain value here.
        assert summary["avg_worker_time"] == pytest.approx(2.0, abs=0.01)
