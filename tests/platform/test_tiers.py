"""Tests for tiered coordination with task escalation (§III-A tiers)."""

import pytest

from repro.model.task import Task, TaskPhase
from repro.model.worker import WorkerProfile
from repro.platform.cost import ZeroCost
from repro.platform.policies import react_policy
from repro.platform.tiers import TieredCoordinator
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

from .helpers import reliable_behavior


def _coordinator(depth=2, escalate_after=10.0, check_interval=2.0):
    engine = Engine()
    coordinator = TieredCoordinator(
        engine=engine,
        policy=react_policy(batch_threshold=1),
        rng=RngRegistry(seed=4),
        depth=depth,
        escalate_after=escalate_after,
        check_interval=check_interval,
        cost_model=ZeroCost(),
    )
    return engine, coordinator


def _cell_point(cell, side):
    """A point in the middle of grid cell (row, col)."""
    r, c = cell
    return ((r + 0.5) / side, (c + 0.5) / side)


def _task(lat, lon, deadline=300.0):
    return Task(latitude=lat, longitude=lon, deadline=deadline)


class TestStructure:
    def test_grid_size(self):
        engine, coordinator = _coordinator(depth=2)
        assert len(coordinator.servers) == 16  # 4x4 leaves

    def test_cell_routing(self):
        engine, coordinator = _coordinator(depth=1)
        assert coordinator.cell_for(0.25, 0.25) == (0, 0)
        assert coordinator.cell_for(0.25, 0.75) == (0, 1)
        assert coordinator.cell_for(0.75, 0.25) == (1, 0)

    def test_siblings_share_parent(self):
        engine, coordinator = _coordinator(depth=2)
        assert set(coordinator.siblings((0, 0))) == {(0, 1), (1, 0), (1, 1)}
        assert set(coordinator.siblings((2, 3))) == {(2, 2), (3, 2), (3, 3)}

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TieredCoordinator(
                engine=Engine(), policy=react_policy(), rng=RngRegistry(seed=1), depth=0
            )


class TestEscalation:
    def test_starved_task_escalates_to_sibling(self):
        engine, coordinator = _coordinator(depth=1, escalate_after=10.0)
        # worker only in cell (0,1); task lands in worker-less cell (0,0)
        lat, lon = _cell_point((0, 1), 2)
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=lat, longitude=lon),
            reliable_behavior(),
        )
        task_lat, task_lon = _cell_point((0, 0), 2)
        task = _task(task_lat, task_lon)
        coordinator.submit_task(task)
        engine.run(until=60.0)
        assert len(coordinator.escalations) == 1
        record = coordinator.escalations[0]
        assert record.from_cell == (0, 0)
        assert record.to_cell == (0, 1)
        assert record.waited >= 10.0
        assert not record.network_wide
        assert task.phase is TaskPhase.COMPLETED

    def test_network_wide_escalation_when_parent_starved(self):
        engine, coordinator = _coordinator(depth=2, escalate_after=10.0)
        # only worker lives in the opposite corner (3,3): outside (0,0)'s
        # sibling group {(0,1),(1,0),(1,1)}
        lat, lon = _cell_point((3, 3), 4)
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=lat, longitude=lon),
            reliable_behavior(),
        )
        task_lat, task_lon = _cell_point((0, 0), 4)
        task = _task(task_lat, task_lon)
        coordinator.submit_task(task)
        engine.run(until=60.0)
        assert any(r.network_wide for r in coordinator.escalations)
        assert task.phase is TaskPhase.COMPLETED

    def test_fresh_tasks_not_escalated(self):
        engine, coordinator = _coordinator(depth=1, escalate_after=50.0)
        lat, lon = _cell_point((0, 1), 2)
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=lat, longitude=lon),
            reliable_behavior(),
        )
        coordinator.submit_task(_task(*_cell_point((0, 0), 2)))
        engine.run(until=30.0)
        assert coordinator.escalations == []

    def test_expired_tasks_not_escalated(self):
        engine, coordinator = _coordinator(depth=1, escalate_after=10.0)
        lat, lon = _cell_point((0, 1), 2)
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=lat, longitude=lon),
            reliable_behavior(),
        )
        coordinator.submit_task(_task(*_cell_point((0, 0), 2), deadline=8.0))
        engine.run(until=60.0)
        assert coordinator.escalations == []

    def test_no_free_workers_requeues_locally(self):
        engine, coordinator = _coordinator(depth=1, escalate_after=5.0)
        task = _task(*_cell_point((0, 0), 2))
        coordinator.submit_task(task)
        engine.run(until=20.0)
        assert coordinator.escalations == []
        assert task.phase is TaskPhase.UNASSIGNED

    def test_local_worker_preferred_over_escalation(self):
        engine, coordinator = _coordinator(depth=1, escalate_after=10.0)
        for cell, wid in (((0, 0), 0), ((0, 1), 1)):
            lat, lon = _cell_point(cell, 2)
            coordinator.add_worker(
                WorkerProfile(worker_id=wid, latitude=lat, longitude=lon),
                reliable_behavior(),
            )
        task = _task(*_cell_point((0, 0), 2))
        coordinator.submit_task(task)
        engine.run(until=60.0)
        assert coordinator.escalations == []
        assert task.phase is TaskPhase.COMPLETED
        assert task.assigned_worker == 0


class TestAggregate:
    def test_summary_counts_all_servers_and_escalations(self):
        engine, coordinator = _coordinator(depth=1, escalate_after=5.0)
        lat, lon = _cell_point((0, 1), 2)
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=lat, longitude=lon),
            reliable_behavior(),
        )
        coordinator.submit_task(_task(*_cell_point((0, 0), 2)))
        coordinator.submit_task(_task(*_cell_point((0, 1), 2)))
        engine.run(until=100.0)
        summary = coordinator.aggregate_summary()
        assert summary["received"] == 2
        assert summary["completed"] == 2
        assert summary["escalations"] >= 1
        coordinator.stop()
