"""Unit tests for the Scheduling Component (batching, latency, publication)."""

import pytest

from repro.model.task import TaskPhase
from repro.platform.cost import PaperCalibratedCost
from repro.platform.policies import react_policy

from .helpers import build_server, reliable_behavior, submit


class TestThresholdTrigger:
    def test_batch_starts_at_threshold(self):
        engine, server = build_server(
            n_workers=10, policy=react_policy(batch_threshold=3, batch_period=1000.0)
        )
        submit(server, engine)
        submit(server, engine)
        assert len(server.scheduling.batches) == 0
        assert server.task_management.unassigned_count == 2
        submit(server, engine)  # third task crosses the threshold
        engine.run(until=0.5)
        assert len(server.scheduling.batches) == 1
        assert server.scheduling.batches[0].n_tasks == 3

    def test_no_batch_without_available_workers(self):
        engine, server = build_server(
            n_workers=1, policy=react_policy(batch_threshold=1, batch_period=1000.0)
        )
        submit(server, engine)
        engine.run(until=0.1)  # worker 0 now busy
        submit(server, engine)
        submit(server, engine)
        before = len(server.scheduling.batches)
        engine.run(until=0.2)
        # no free worker -> no new batch despite threshold
        assert len(server.scheduling.batches) == before
        # once the worker completes (~2-4 s), the queue drains
        engine.run(until=30.0)
        assert server.task_management.unassigned_count == 0


class TestPeriodicTrigger:
    def test_straggler_drained_by_periodic_batch(self):
        engine, server = build_server(
            n_workers=5, policy=react_policy(batch_threshold=10, batch_period=5.0)
        )
        task = submit(server, engine)  # below threshold
        engine.run(until=4.9)
        assert task.phase is TaskPhase.UNASSIGNED
        engine.run(until=5.5)
        assert task.phase is TaskPhase.ASSIGNED

    def test_periodic_noop_when_queue_empty(self):
        engine, server = build_server(n_workers=2)
        engine.run(until=20.0)
        assert len(server.scheduling.batches) == 0


class TestSimulatedLatency:
    def test_assignments_published_after_model_latency(self):
        cost = PaperCalibratedCost(batch_overhead=2.0)
        engine, server = build_server(
            n_workers=3,
            cost_model=cost,
            policy=react_policy(batch_threshold=1, batch_period=1000.0),
        )
        task = submit(server, engine)
        engine.run(until=1.9)
        assert task.phase is TaskPhase.UNASSIGNED  # matcher still "running"
        engine.run(until=2.5)
        assert task.phase is TaskPhase.ASSIGNED
        record = server.scheduling.batches[0]
        assert record.published_at - record.started_at == pytest.approx(2.0, abs=0.01)

    def test_single_batch_at_a_time(self):
        cost = PaperCalibratedCost(batch_overhead=3.0)
        engine, server = build_server(
            n_workers=10,
            cost_model=cost,
            policy=react_policy(batch_threshold=1, batch_period=1000.0),
        )
        submit(server, engine)
        engine.run(until=1.0)  # batch 1 in flight
        submit(server, engine)
        submit(server, engine)
        engine.run(until=2.0)
        assert len(server.scheduling.batches) == 0  # nothing published yet
        engine.run(until=7.0)
        # batch 1 published at t=3, batch 2 chained immediately after
        assert len(server.scheduling.batches) == 2
        assert server.scheduling.batches[1].n_tasks == 2

    def test_matcher_metrics_recorded(self):
        cost = PaperCalibratedCost(batch_overhead=1.0)
        engine, server = build_server(
            n_workers=2, cost_model=cost,
            policy=react_policy(batch_threshold=1, batch_period=1000.0),
        )
        submit(server, engine)
        engine.run(until=5.0)
        assert server.metrics.matcher_invocations == 1
        assert server.metrics.matcher_simulated_seconds == pytest.approx(1.0, abs=0.01)


class TestExpiredRetirement:
    def test_expired_queued_task_retired_at_checkout(self):
        engine, server = build_server(
            n_workers=0,  # nothing can be assigned
            policy=react_policy(batch_threshold=1, batch_period=5.0),
            start=True,
        )
        task = submit(server, engine, deadline=7.0)
        engine.run(until=20.0)
        assert task.phase is TaskPhase.EXPIRED
        assert server.metrics.expired_unassigned == 1
        server.metrics.check_conservation()

    def test_batch_report_counts_retired(self):
        engine, server = build_server(
            n_workers=1, policy=react_policy(batch_threshold=10, batch_period=5.0)
        )
        submit(server, engine, deadline=3.0)  # expires before periodic batch
        submit(server, engine, deadline=300.0)
        engine.run(until=6.0)
        record = server.scheduling.batches[0]
        assert record.retired_expired == 1
        assert record.n_tasks == 1


class TestBuildReports:
    def test_batch_record_carries_graph_stats(self):
        engine, server = build_server(
            n_workers=4, policy=react_policy(batch_threshold=2, batch_period=1000.0)
        )
        submit(server, engine)
        submit(server, engine)
        engine.run(until=1.0)
        record = server.scheduling.batches[0]
        assert record.n_workers == 4
        assert record.n_tasks == 2
        # cold-start workers connect everywhere: full 4x2 graph
        assert record.n_edges == 8
        assert record.matched == 2
        assert record.build_report.cold_start_workers == 4
