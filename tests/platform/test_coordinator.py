"""Unit tests for the multi-region coordinator."""

import pytest

from repro.model.region import Region
from repro.model.task import Task, TaskPhase
from repro.model.worker import WorkerProfile
from repro.platform.coordinator import Coordinator
from repro.platform.cost import ZeroCost
from repro.platform.policies import react_policy
from repro.sim.engine import Engine
from repro.sim.rng import STREAM_MATCHER, RngRegistry

from .helpers import reliable_behavior


def _coordinator(regions=None, overload_limit=None):
    engine = Engine()
    coordinator = Coordinator(
        engine=engine,
        policy=react_policy(batch_threshold=1),
        regions=regions or [Region(0, 10, 0, 10), Region(0, 10, 10, 20)],
        rng=RngRegistry(seed=5),
        cost_model=ZeroCost(),
        overload_queue_limit=overload_limit,
    )
    return engine, coordinator


def _task(lat, lon, deadline=90.0):
    return Task(latitude=lat, longitude=lon, deadline=deadline)


class TestRouting:
    def test_worker_routed_by_location(self):
        engine, coordinator = _coordinator()
        west = WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0)
        east = WorkerProfile(worker_id=1, latitude=5.0, longitude=15.0)
        coordinator.add_worker(west, reliable_behavior())
        coordinator.add_worker(east, reliable_behavior())
        assert len(coordinator.servers[0].profiling) == 1
        assert len(coordinator.servers[1].profiling) == 1

    def test_task_routed_by_coordinates(self):
        engine, coordinator = _coordinator()
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=5.0, longitude=15.0), reliable_behavior()
        )
        task = _task(5.0, 15.0)
        coordinator.submit_task(task)
        assert coordinator.servers[1].metrics.received == 1
        engine.run(until=30.0)
        assert task.phase is TaskPhase.COMPLETED

    def test_out_of_area_rejected(self):
        engine, coordinator = _coordinator()
        with pytest.raises(ValueError, match="outside"):
            coordinator.submit_task(_task(50.0, 50.0))

    def test_server_for_lookup(self):
        engine, coordinator = _coordinator()
        assert coordinator.server_for(1.0, 1.0) is coordinator.servers[0]

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            Coordinator(
                engine=Engine(),
                policy=react_policy(),
                regions=[],
                rng=RngRegistry(seed=1),
            )


class TestSplitOnOverload:
    def test_split_triggered_by_queue_limit(self):
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)], overload_limit=3
        )
        # No workers: tasks pile up unassigned until the limit trips.
        for i in range(5):
            coordinator.submit_task(_task(5.0, 5.0, deadline=600.0))
        assert coordinator.splits_performed >= 1
        assert len(coordinator.regions) >= 2

    def test_split_redistributes_idle_workers(self):
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)], overload_limit=2
        )
        low = WorkerProfile(worker_id=0, latitude=1.0, longitude=5.0)
        high = WorkerProfile(worker_id=1, latitude=9.0, longitude=5.0)
        coordinator.add_worker(low, reliable_behavior())
        coordinator.add_worker(high, reliable_behavior())
        # saturate both workers, then overload the queue
        for _ in range(6):
            coordinator.submit_task(_task(5.0, 5.0, deadline=600.0))
        assert coordinator.splits_performed >= 1
        # both halves can still serve their areas
        total_workers = sum(len(s.profiling) for s in coordinator.servers)
        assert total_workers >= 0  # idle workers moved; busy ones drain on old server

    def test_double_split_assigns_disjoint_rng_streams(self):
        """Regression: position-derived server ids let a post-split server
        reuse an earlier server's RNG fork, correlating their matcher
        streams.  Ids must stay unique — and fork lineages disjoint — no
        matter how many splits happen."""
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)], overload_limit=2
        )
        for _ in range(4):
            coordinator.submit_task(_task(2.0, 2.0, deadline=600.0))
        for _ in range(4):
            coordinator.submit_task(_task(8.0, 8.0, deadline=600.0))
        assert coordinator.splits_performed >= 2

        ids = coordinator.server_ids
        assert len(ids) == len(set(ids)), ids

        lineages = [entry.rng.lineage for entry in coordinator._entries]
        assert len(lineages) == len(set(lineages)), lineages
        keys = [entry.rng.spawn_key(STREAM_MATCHER) for entry in coordinator._entries]
        assert len(keys) == len(set(keys)), keys

    def test_aggregate_summary_sums_servers(self):
        engine, coordinator = _coordinator()
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0), reliable_behavior()
        )
        coordinator.add_worker(
            WorkerProfile(worker_id=1, latitude=5.0, longitude=15.0), reliable_behavior()
        )
        coordinator.submit_task(_task(5.0, 5.0))
        coordinator.submit_task(_task(5.0, 15.0))
        engine.run(until=60.0)
        summary = coordinator.aggregate_summary()
        assert summary["received"] == 2
        assert summary["completed"] == 2
        assert summary["on_time_fraction"] == 1.0
