"""Unit tests for the multi-region coordinator."""

import pytest

from repro.model.region import Region, RegionGrid
from repro.model.task import Task, TaskPhase
from repro.model.worker import WorkerProfile
from repro.platform.coordinator import Coordinator
from repro.platform.cost import ZeroCost
from repro.platform.policies import react_policy
from repro.sim.engine import Engine
from repro.sim.rng import STREAM_MATCHER, RngRegistry

from .helpers import reliable_behavior


def _coordinator(regions=None, overload_limit=None, batch_threshold=1, max_splits=4):
    engine = Engine()
    coordinator = Coordinator(
        engine=engine,
        policy=react_policy(batch_threshold=batch_threshold),
        regions=regions or [Region(0, 10, 0, 10), Region(0, 10, 10, 20)],
        rng=RngRegistry(seed=5),
        cost_model=ZeroCost(),
        overload_queue_limit=overload_limit,
        max_splits_per_submit=max_splits,
    )
    return engine, coordinator


def _task(lat, lon, deadline=90.0):
    return Task(latitude=lat, longitude=lon, deadline=deadline)


class TestRouting:
    def test_worker_routed_by_location(self):
        engine, coordinator = _coordinator()
        west = WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0)
        east = WorkerProfile(worker_id=1, latitude=5.0, longitude=15.0)
        coordinator.add_worker(west, reliable_behavior())
        coordinator.add_worker(east, reliable_behavior())
        assert len(coordinator.servers[0].profiling) == 1
        assert len(coordinator.servers[1].profiling) == 1

    def test_task_routed_by_coordinates(self):
        engine, coordinator = _coordinator()
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=5.0, longitude=15.0), reliable_behavior()
        )
        task = _task(5.0, 15.0)
        coordinator.submit_task(task)
        assert coordinator.servers[1].metrics.received == 1
        engine.run(until=30.0)
        assert task.phase is TaskPhase.COMPLETED

    def test_out_of_area_rejected(self):
        engine, coordinator = _coordinator()
        with pytest.raises(ValueError, match="outside"):
            coordinator.submit_task(_task(50.0, 50.0))

    def test_server_for_lookup(self):
        engine, coordinator = _coordinator()
        assert coordinator.server_for(1.0, 1.0) is coordinator.servers[0]

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            Coordinator(
                engine=Engine(),
                policy=react_policy(),
                regions=[],
                rng=RngRegistry(seed=1),
            )

    def test_invalid_max_splits_rejected(self):
        with pytest.raises(ValueError, match="max_splits_per_submit"):
            Coordinator(
                engine=Engine(),
                policy=react_policy(),
                regions=[Region(0, 10, 0, 10)],
                rng=RngRegistry(seed=1),
                max_splits_per_submit=0,
            )

    def test_top_edge_routes_identically_via_grid_and_coordinator(self):
        # Regression for the boundary bug: a point exactly on the grid's
        # top/right edge must be owned by the same region through both
        # lookup paths, and neither may raise.
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        engine, coordinator = _coordinator(regions=list(grid.regions))
        for lat, lon in [(10.0, 3.0), (3.0, 10.0), (10.0, 10.0), (5.0, 10.0)]:
            located = grid.locate(lat, lon)
            entry = coordinator._entry_for(lat, lon)
            assert entry.region.region_id == located.region_id, (lat, lon)
            assert coordinator.server_for(lat, lon) is entry.server

    def test_top_edge_task_submits_without_raising(self):
        grid = RegionGrid(0, 10, 0, 10, rows=2, cols=2)
        engine, coordinator = _coordinator(regions=list(grid.regions))
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=9.0, longitude=9.0),
            reliable_behavior(),
        )
        task = _task(10.0, 10.0)
        coordinator.submit_task(task)  # used to raise "outside every region"
        assert coordinator.servers[-1].metrics.received == 1


class TestSplitOnOverload:
    def test_split_triggered_by_queue_limit(self):
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)], overload_limit=3
        )
        # No workers: tasks pile up unassigned until the limit trips.
        for i in range(5):
            coordinator.submit_task(_task(5.0, 5.0, deadline=600.0))
        assert coordinator.splits_performed >= 1
        assert len(coordinator.regions) >= 2

    def test_split_redistributes_idle_workers(self):
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)], overload_limit=2
        )
        low = WorkerProfile(worker_id=0, latitude=1.0, longitude=5.0)
        high = WorkerProfile(worker_id=1, latitude=9.0, longitude=5.0)
        coordinator.add_worker(low, reliable_behavior())
        coordinator.add_worker(high, reliable_behavior())
        # saturate both workers, then overload the queue
        for _ in range(6):
            coordinator.submit_task(_task(5.0, 5.0, deadline=600.0))
        assert coordinator.splits_performed >= 1
        # both halves can still serve their areas
        total_workers = sum(len(s.profiling) for s in coordinator.servers)
        assert total_workers >= 0  # idle workers moved; busy ones drain on old server

    def test_double_split_assigns_disjoint_rng_streams(self):
        """Regression: position-derived server ids let a post-split server
        reuse an earlier server's RNG fork, correlating their matcher
        streams.  Ids must stay unique — and fork lineages disjoint — no
        matter how many splits happen."""
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)], overload_limit=2
        )
        for _ in range(4):
            coordinator.submit_task(_task(2.0, 2.0, deadline=600.0))
        for _ in range(4):
            coordinator.submit_task(_task(8.0, 8.0, deadline=600.0))
        assert coordinator.splits_performed >= 2

        ids = coordinator.server_ids
        assert len(ids) == len(set(ids)), ids

        lineages = [entry.rng.lineage for entry in coordinator._entries]
        assert len(lineages) == len(set(lineages)), lineages
        keys = [entry.rng.spawn_key(STREAM_MATCHER) for entry in coordinator._entries]
        assert len(keys) == len(set(keys)), keys

    def test_cascade_bounded_per_submit(self):
        # With every queued task in one corner, the first split relieves
        # nothing (the hot corner stays on one child), so the cascade
        # re-checks and re-splits — but never past max_splits_per_submit
        # on any single submission.
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)],
            overload_limit=1,
            batch_threshold=100,  # keep workers out of it: no matching fires
            max_splits=2,
        )
        for _ in range(6):
            before = coordinator.splits_performed
            coordinator.submit_task(_task(0.5, 0.5, deadline=600.0))
            assert coordinator.splits_performed - before <= 2
        assert coordinator.splits_performed >= 2  # the cascade did fire

    def test_cascade_relieves_both_halves(self):
        # Queue spread over the whole region: one submission's cascade may
        # split both children; every resulting server must end at or below
        # the limit (or own an unsplittable sliver, impossible here).
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)],
            overload_limit=2,
            batch_threshold=100,
            max_splits=4,
        )
        for lat, lon in [(1, 1), (1, 9), (9, 1), (9, 9), (5, 5), (2, 7)]:
            coordinator.submit_task(_task(lat, lon, deadline=600.0))
        assert coordinator.splits_performed >= 2
        for server in coordinator.servers:
            assert server.task_management.unassigned_count <= 2

    def test_midline_idle_worker_migrates_to_exactly_one_server(self):
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)],
            overload_limit=2,
            batch_threshold=100,  # worker must still be idle at split time
        )
        midline_worker = WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0)
        coordinator.add_worker(midline_worker, reliable_behavior())
        for _ in range(4):
            coordinator.submit_task(_task(5.0, 5.0, deadline=600.0))
        assert coordinator.splits_performed >= 1
        owners = [
            server for server in coordinator.servers
            if any(p.worker_id == 0 for p in server.profiling)
        ]
        assert len(owners) == 1
        # The square splits on the latitude midline (5.0), which belongs to
        # the upper half — the same server the routing path would pick.
        assert owners[0] is coordinator.server_for(5.0, 5.0)
        assert coordinator.workers_migrated >= 1

    def test_migration_counters_track_split_handoffs(self):
        engine, coordinator = _coordinator(
            regions=[Region(0, 10, 0, 10)],
            overload_limit=2,
            batch_threshold=100,
        )
        assert coordinator.tasks_migrated == 0
        assert coordinator.workers_migrated == 0
        # Tasks in the upper half get handed to the split-off server.
        for _ in range(4):
            coordinator.submit_task(_task(8.0, 5.0, deadline=600.0))
        assert coordinator.splits_performed >= 1
        assert coordinator.tasks_migrated >= 1

    def test_aggregate_summary_with_zero_completion_server(self):
        # Server 1 never sees a task: its summary has completed == 0 and
        # None time averages, which the weighted aggregation must skip
        # without dividing by zero or dropping the busy server's numbers.
        engine, coordinator = _coordinator()
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0),
            reliable_behavior(),
        )
        coordinator.submit_task(_task(5.0, 5.0))
        engine.run(until=60.0)
        summary = coordinator.aggregate_summary()
        assert summary["received"] == 1
        assert summary["completed"] == 1
        assert summary["on_time_fraction"] == 1.0
        assert summary.get("avg_total_time") is not None

    def test_aggregate_summary_sums_servers(self):
        engine, coordinator = _coordinator()
        coordinator.add_worker(
            WorkerProfile(worker_id=0, latitude=5.0, longitude=5.0), reliable_behavior()
        )
        coordinator.add_worker(
            WorkerProfile(worker_id=1, latitude=5.0, longitude=15.0), reliable_behavior()
        )
        coordinator.submit_task(_task(5.0, 5.0))
        coordinator.submit_task(_task(5.0, 15.0))
        engine.run(until=60.0)
        summary = coordinator.aggregate_summary()
        assert summary["received"] == 2
        assert summary["completed"] == 2
        assert summary["on_time_fraction"] == 1.0
