"""Unit tests for the Task Management Component."""

import pytest

from repro.platform.task_management import TaskManagementComponent


@pytest.fixture
def component():
    return TaskManagementComponent()


class TestIntake:
    def test_add_task(self, component, make_task):
        task = make_task()
        component.add_task(task)
        assert component.unassigned_count == 1
        assert component.get(task.task_id) is task

    def test_duplicate_rejected(self, component, make_task):
        task = make_task()
        component.add_task(task)
        with pytest.raises(ValueError, match="already known"):
            component.add_task(task)

    def test_assigned_task_rejected(self, component, make_task):
        task = make_task()
        task.mark_assigned(1, now=0.0)
        with pytest.raises(ValueError, match="not unassigned"):
            component.add_task(task)

    def test_unknown_task_lookup(self, component):
        with pytest.raises(KeyError):
            component.get(999)


class TestBatchCheckout:
    def test_checkout_moves_all_unassigned(self, component, make_task):
        tasks = [make_task() for _ in range(3)]
        for t in tasks:
            component.add_task(t)
        batch, retired = component.checkout_batch(now=0.0, assign_expired=False)
        assert batch == tasks
        assert retired == []
        assert component.unassigned_count == 0
        assert component.in_flight == 3

    def test_checkout_retires_expired(self, component, make_task):
        fresh = make_task(deadline=100.0)
        stale = make_task(deadline=10.0)
        component.add_task(fresh)
        component.add_task(stale)
        batch, retired = component.checkout_batch(now=50.0, assign_expired=False)
        assert batch == [fresh]
        assert retired == [stale]
        assert component.finished_count == 1

    def test_checkout_retires_at_exact_deadline(self, component, make_task):
        """Boundary convention: TTD == now is expired (same as the Eq. 2
        sweep closing the window at ``ttd <= elapsed``)."""
        boundary = make_task(deadline=50.0, submitted_at=0.0)
        component.add_task(boundary)
        batch, retired = component.checkout_batch(now=50.0, assign_expired=False)
        assert batch == []
        assert retired == [boundary]

    def test_retire_expired_at_exact_deadline(self, component, make_task):
        boundary = make_task(deadline=50.0, submitted_at=0.0)
        fresh = make_task(deadline=50.001, submitted_at=0.0)
        component.add_task(boundary)
        component.add_task(fresh)
        retired = component.retire_expired(now=50.0)
        assert retired == [boundary]
        assert component.unassigned_count == 1

    def test_checkout_keeps_expired_when_assigning_expired(self, component, make_task):
        stale = make_task(deadline=10.0)
        component.add_task(stale)
        batch, retired = component.checkout_batch(now=50.0, assign_expired=True)
        assert batch == [stale]
        assert retired == []

    def test_commit_assignment(self, component, make_task):
        task = make_task()
        component.add_task(task)
        batch, _ = component.checkout_batch(now=0.0, assign_expired=False)
        component.commit_assignment(batch[0], worker_id=7, now=1.0)
        assert component.assigned_count == 1
        assert task.assigned_worker == 7

    def test_return_unmatched(self, component, make_task):
        task = make_task()
        component.add_task(task)
        batch, _ = component.checkout_batch(now=0.0, assign_expired=False)
        component.return_unmatched(batch[0])
        assert component.unassigned_count == 1

    def test_commit_without_checkout_rejected(self, component, make_task):
        task = make_task()
        component.add_task(task)
        with pytest.raises(ValueError, match="not checked out"):
            component.commit_assignment(task, worker_id=1, now=0.0)


class TestLifecycle:
    def _assigned_task(self, component, make_task):
        task = make_task()
        component.add_task(task)
        batch, _ = component.checkout_batch(now=0.0, assign_expired=False)
        component.commit_assignment(batch[0], worker_id=1, now=0.0)
        return task

    def test_complete(self, component, make_task):
        task = self._assigned_task(component, make_task)
        component.complete(task, now=5.0)
        assert component.finished_count == 1
        assert component.assigned_count == 0
        assert task.completed_at == 5.0

    def test_withdraw_returns_to_queue(self, component, make_task):
        task = self._assigned_task(component, make_task)
        component.withdraw(task)
        assert component.unassigned_count == 1
        assert component.assigned_count == 0
        assert task.assigned_worker is None

    def test_complete_unassigned_rejected(self, component, make_task):
        task = make_task()
        component.add_task(task)
        with pytest.raises(ValueError):
            component.complete(task, now=1.0)

    def test_withdraw_unassigned_rejected(self, component, make_task):
        task = make_task()
        component.add_task(task)
        with pytest.raises(ValueError):
            component.withdraw(task)

    def test_iteration_covers_all_pools(self, component, make_task):
        queued = make_task()
        running = self._assigned_task(component, make_task)
        done = self._assigned_task(component, make_task)
        component.complete(done, now=2.0)
        component.add_task(queued)
        ids = {t.task_id for t in component}
        assert ids == {queued.task_id, running.task_id, done.task_id}

    def test_in_flight_counts_batch_and_assigned(self, component, make_task):
        a, b = make_task(), make_task()
        component.add_task(a)
        component.add_task(b)
        batch, _ = component.checkout_batch(now=0.0, assign_expired=False)
        component.commit_assignment(batch[0], worker_id=1, now=0.0)
        # one assigned + one returned to batch pool
        assert component.in_flight == 2
