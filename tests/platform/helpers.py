"""Shared helpers for platform-level tests: a small wired server."""

from __future__ import annotations

from typing import Optional

from repro.model.task import Task, TaskCategory
from repro.model.worker import WorkerBehavior, WorkerProfile
from repro.platform.cost import CostModel, ZeroCost
from repro.platform.policies import SchedulingPolicy, react_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def reliable_behavior(min_time=2.0, max_time=4.0, quality=1.0) -> WorkerBehavior:
    """Never delays, never abandons: completions are fully predictable."""
    return WorkerBehavior(
        min_time=min_time, max_time=max_time, quality=quality, delay_probability=0.0
    )


def dawdler_behavior(delay_cap=130.0, abandon=0.0) -> WorkerBehavior:
    """Always delays (optionally abandons)."""
    return WorkerBehavior(
        min_time=2.0,
        max_time=4.0,
        quality=1.0,
        delay_probability=1.0,
        abandon_probability=abandon,
        delay_cap=delay_cap,
        delay_floor=delay_cap - 1.0,
    )


def abandoner_behavior(delay_cap=130.0) -> WorkerBehavior:
    """Always abandons silently."""
    return dawdler_behavior(delay_cap=delay_cap, abandon=1.0)


def build_server(
    n_workers: int = 5,
    behavior: Optional[WorkerBehavior] = None,
    policy: Optional[SchedulingPolicy] = None,
    cost_model: Optional[CostModel] = None,
    seed: int = 3,
    start: bool = True,
) -> tuple[Engine, REACTServer]:
    """A started server with ``n_workers`` identical workers."""
    engine = Engine()
    server = REACTServer(
        engine=engine,
        policy=policy if policy is not None else react_policy(batch_threshold=1),
        rng=RngRegistry(seed=seed),
        cost_model=cost_model if cost_model is not None else ZeroCost(),
    )
    behavior = behavior if behavior is not None else reliable_behavior()
    for i in range(n_workers):
        server.add_worker(WorkerProfile(worker_id=i), behavior)
    if start:
        server.start()
    return engine, server


def submit(server: REACTServer, engine: Engine, deadline: float = 90.0) -> Task:
    task = Task(
        latitude=0.0,
        longitude=0.0,
        deadline=deadline,
        category=TaskCategory.GENERIC,
        submitted_at=engine.now,
    )
    server.submit_task(task)
    return task
