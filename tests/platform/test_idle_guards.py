"""Worker-absence guards and cache hygiene added with the kernels layer.

Three related behaviours:

* the periodic batch trigger skips matching when no worker is available
  (mirroring ``maybe_trigger``) but still retires expired queued tasks;
* :meth:`TaskManagementComponent.retire_expired` implements that retirement
  without a batch checkout;
* the profiling deregister hook evicts departing workers from the
  :class:`DeadlineEstimator` fit cache so churn cannot grow it unboundedly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.task import TaskPhase
from repro.platform.policies import react_policy

from .helpers import build_server, submit


class TestPeriodicTriggerGuard:
    def test_no_batch_without_available_workers(self):
        engine, server = build_server(n_workers=0, start=True)
        submit(server, engine, deadline=90.0)
        engine.run(until=30.0)
        assert server.scheduling.batches == []
        assert server.task_management.unassigned_count == 1

    def test_queued_tasks_still_expire_without_workers(self):
        engine, server = build_server(n_workers=0, start=True)
        task = submit(server, engine, deadline=20.0)
        engine.run(until=60.0)
        # No batch ever ran, yet the lapsed task left the queue on schedule.
        assert server.scheduling.batches == []
        assert task.phase is TaskPhase.EXPIRED
        assert server.task_management.unassigned_count == 0
        assert server.metrics.expired_unassigned >= 1

    def test_batch_runs_once_a_worker_frees_up(self):
        engine, server = build_server(n_workers=1, start=True)
        submit(server, engine, deadline=500.0)
        submit(server, engine, deadline=500.0)
        engine.run(until=400.0)
        # One worker serves both tasks sequentially: the second assignment
        # needs the periodic trigger to fire after he frees up.
        assert len(server.scheduling.batches) >= 2
        assert server.metrics.completed == 2

    def test_assign_expired_policy_still_batches_expired_tasks(self):
        # With assign_expired=True lapsed tasks are still handed to the
        # matcher, so the no-worker guard must not retire them.
        engine, server = build_server(
            n_workers=0,
            policy=react_policy(batch_threshold=1, assign_expired=True),
            start=True,
        )
        task = submit(server, engine, deadline=20.0)
        engine.run(until=60.0)
        assert task.phase is TaskPhase.UNASSIGNED
        assert server.task_management.unassigned_count == 1


class TestRetireExpired:
    def test_moves_only_expired_tasks(self, make_task):
        from repro.platform.task_management import TaskManagementComponent

        tm = TaskManagementComponent()
        fresh = make_task(deadline=100.0)
        stale = make_task(deadline=10.0)
        tm.add_task(fresh)
        tm.add_task(stale)
        retired = tm.retire_expired(now=50.0)
        assert retired == [stale]
        assert stale.phase is TaskPhase.EXPIRED
        assert tm.unassigned_count == 1
        assert tm.finished_count == 1
        assert tm.get(fresh.task_id) is fresh

    def test_noop_when_nothing_expired(self, make_task):
        from repro.platform.task_management import TaskManagementComponent

        tm = TaskManagementComponent()
        tm.add_task(make_task(deadline=100.0))
        assert tm.retire_expired(now=5.0) == []
        assert tm.unassigned_count == 1


class TestFitCacheEviction:
    def _train(self, server, worker_id: int, n: int = 5) -> None:
        profile = server.profiling.get(worker_id)
        rng = np.random.default_rng(worker_id)
        for t in 2.0 + rng.pareto(2.0, n) * 5.0:
            from repro.model.task import TaskCategory

            profile.record_completion(float(t), TaskCategory.GENERIC, True)

    def test_deregister_evicts_cached_fit(self):
        engine, server = build_server(n_workers=3, start=False)
        self._train(server, 0)
        fit = server.estimator.fit_worker(server.profiling.get(0))
        assert fit is not None
        assert 0 in server.estimator._fit_cache
        server.profiling.deregister(0)
        assert 0 not in server.estimator._fit_cache

    def test_remove_worker_path_evicts(self):
        engine, server = build_server(n_workers=2, start=True)
        self._train(server, 1)
        server.estimator.fit_worker(server.profiling.get(1))
        assert 1 in server.estimator._fit_cache
        server.remove_worker(1)
        assert 1 not in server.estimator._fit_cache
        # The remaining worker's fit is untouched.
        self._train(server, 0)
        server.estimator.fit_worker(server.profiling.get(0))
        assert 0 in server.estimator._fit_cache

    def test_evict_unknown_worker_is_noop(self):
        engine, server = build_server(n_workers=1, start=False)
        server.estimator.evict(12345)  # never fitted: must not raise

    def test_hooks_run_for_every_subscriber(self):
        engine, server = build_server(n_workers=1, start=False)
        seen = []
        server.profiling.add_deregister_hook(seen.append)
        server.profiling.deregister(0)
        assert seen == [0]
        with pytest.raises(KeyError):
            server.profiling.deregister(0)
        assert seen == [0]  # hooks don't fire for failed deregistration
