"""Property-based tests of the retainer cost ledger invariants.

The comparison report's cost columns (and the analytic validation's
cost-per-task check) rest on three ledger invariants: cost is monotone in
hold time, zero-duration assignments cost nothing, and the grand total is
exactly the sum of the per-worker accounts.  Hypothesis sweeps those over
arbitrary charge interleavings.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.cost import RetainerCostConfig, RetainerLedger

wages = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
payments = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
hold_times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
worker_ids = st.integers(min_value=0, max_value=7)

# An arbitrary interleaving of ledger mutations: ("hold", wid, seconds) or
# ("task", wid, duration).
charges = st.lists(
    st.one_of(
        st.tuples(st.just("hold"), worker_ids, hold_times),
        st.tuples(st.just("task"), worker_ids, durations),
    ),
    max_size=60,
)


def apply_charges(ledger, ops):
    for kind, wid, amount in ops:
        if kind == "hold":
            ledger.accrue_hold(wid, amount)
        else:
            ledger.charge_assignment(wid, amount)


class TestMonotoneCost:
    @given(wage=wages, ops=charges, extra=hold_times, wid=worker_ids)
    @settings(max_examples=120, deadline=None)
    def test_longer_holds_never_cost_less(self, wage, ops, extra, wid):
        config = RetainerCostConfig(wage_per_second=wage, task_payment=0.0)
        ledger = RetainerLedger(config)
        apply_charges(ledger, ops)
        before = ledger.total_cost
        charged = ledger.accrue_hold(wid, extra)
        assert charged >= 0.0
        assert ledger.total_cost >= before
        assert ledger.total_cost == pytest.approx(before + charged)

    @given(wage=wages, seconds=hold_times)
    @settings(max_examples=80, deadline=None)
    def test_hold_cost_is_wage_times_seconds(self, wage, seconds):
        ledger = RetainerLedger(RetainerCostConfig(wage_per_second=wage))
        charged = ledger.accrue_hold(1, seconds)
        assert charged == pytest.approx(wage * seconds)
        assert ledger.retainer_seconds == pytest.approx(seconds)


class TestZeroCharges:
    @given(wage=wages, payment=payments, wid=worker_ids)
    @settings(max_examples=60, deadline=None)
    def test_zero_duration_assignment_costs_zero(self, wage, payment, wid):
        ledger = RetainerLedger(
            RetainerCostConfig(wage_per_second=wage, task_payment=payment)
        )
        assert ledger.charge_assignment(wid, 0.0) == 0.0
        assert ledger.total_cost == 0.0
        assert ledger.assignments_paid == 0

    @given(payment=payments, wid=worker_ids, duration=durations)
    @settings(max_examples=60, deadline=None)
    def test_positive_duration_charges_flat_payment(self, payment, wid, duration):
        ledger = RetainerLedger(RetainerCostConfig(task_payment=payment))
        charged = ledger.charge_assignment(wid, duration)
        if duration > 0:
            assert charged == payment
            assert ledger.assignments_paid == 1
        else:
            assert charged == 0.0

    @given(wage=wages, wid=worker_ids)
    @settings(max_examples=40, deadline=None)
    def test_zero_hold_costs_zero(self, wage, wid):
        ledger = RetainerLedger(RetainerCostConfig(wage_per_second=wage))
        assert ledger.accrue_hold(wid, 0.0) == 0.0
        assert ledger.total_cost == 0.0


class TestTotalsAreDerived:
    @given(wage=wages, payment=payments, ops=charges)
    @settings(max_examples=120, deadline=None)
    def test_total_is_sum_of_worker_accounts(self, wage, payment, ops):
        ledger = RetainerLedger(
            RetainerCostConfig(wage_per_second=wage, task_payment=payment)
        )
        apply_charges(ledger, ops)
        accounts = ledger.accounts()
        assert ledger.total_cost == pytest.approx(
            math.fsum(a.total for a in accounts.values())
        )
        assert ledger.retainer_cost == pytest.approx(
            math.fsum(a.retainer_cost for a in accounts.values())
        )
        assert ledger.assignment_cost == pytest.approx(
            math.fsum(a.assignment_cost for a in accounts.values())
        )
        assert ledger.assignments_paid == sum(
            a.assignments_paid for a in accounts.values()
        )
        # The two charge streams partition the total.
        assert ledger.total_cost == pytest.approx(
            ledger.retainer_cost + ledger.assignment_cost
        )

    @given(wage=wages, payment=payments, ops=charges, n=st.integers(1, 1000))
    @settings(max_examples=60, deadline=None)
    def test_cost_per_task_scales_total(self, wage, payment, ops, n):
        ledger = RetainerLedger(
            RetainerCostConfig(wage_per_second=wage, task_payment=payment)
        )
        apply_charges(ledger, ops)
        assert ledger.cost_per_task(n) == pytest.approx(ledger.total_cost / n)
        assert ledger.cost_per_task(0) == 0.0


class TestRejections:
    def test_negative_amounts_rejected(self):
        ledger = RetainerLedger(RetainerCostConfig())
        with pytest.raises(ValueError):
            ledger.accrue_hold(1, -1.0)
        with pytest.raises(ValueError):
            ledger.charge_assignment(1, -1.0)

    def test_negative_config_rejected(self):
        with pytest.raises(ValueError):
            RetainerCostConfig(wage_per_second=-0.01)
        with pytest.raises(ValueError):
            RetainerCostConfig(task_payment=-0.05)
