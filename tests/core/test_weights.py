"""Unit tests for the F(worker, task) weight functions."""

import numpy as np
import pytest

from repro.core.weights import (
    AccuracyWeight,
    ConstantWeight,
    DistanceWeight,
    HybridWeight,
    TravelTimeWeight,
    make_weight_function,
)
from repro.model.task import Task, TaskCategory
from repro.model.worker import WorkerProfile


def _task(category=TaskCategory.GENERIC, lat=0.0, lon=0.0):
    return Task(latitude=lat, longitude=lon, deadline=60.0, category=category)


def _worker(worker_id=0, lat=0.0, lon=0.0, records=()):
    profile = WorkerProfile(worker_id=worker_id, latitude=lat, longitude=lon)
    for category, positive in records:
        profile.record_completion(5.0, category, positive)
    return profile


class TestAccuracyWeight:
    def test_eq1_ratio(self):
        worker = _worker(records=[
            (TaskCategory.GENERIC, True),
            (TaskCategory.GENERIC, True),
            (TaskCategory.GENERIC, False),
        ])
        weight = AccuracyWeight().single(worker, _task())
        assert weight == pytest.approx(2 / 3)

    def test_category_isolation(self):
        worker = _worker(records=[
            (TaskCategory.TRAFFIC_MONITORING, True),
            (TaskCategory.PRICE_CHECK, False),
        ])
        fn = AccuracyWeight()
        assert fn.single(worker, _task(TaskCategory.TRAFFIC_MONITORING)) == 1.0
        assert fn.single(worker, _task(TaskCategory.PRICE_CHECK)) == 0.0

    def test_no_history_zero(self):
        assert AccuracyWeight().single(_worker(), _task()) == 0.0

    def test_matrix_shape_and_values(self):
        workers = [
            _worker(0, records=[(TaskCategory.GENERIC, True)]),
            _worker(1, records=[(TaskCategory.GENERIC, False)]),
        ]
        tasks = [_task(), _task(TaskCategory.PRICE_CHECK)]
        matrix = AccuracyWeight().matrix(workers, tasks)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 1.0
        assert matrix[1, 0] == 0.0
        assert matrix[0, 1] == 0.0  # no price-check history

    def test_matrix_mixed_categories_batched(self):
        """Multiple tasks in the same category share one lookup column."""
        worker = _worker(records=[(TaskCategory.GENERIC, True)])
        tasks = [_task(), _task(), _task(TaskCategory.PRICE_CHECK)]
        matrix = AccuracyWeight().matrix([worker], tasks)
        assert list(matrix[0]) == [1.0, 1.0, 0.0]


class TestDistanceWeight:
    def test_zero_distance_is_one(self):
        fn = DistanceWeight(max_km=10.0)
        assert fn.single(_worker(lat=38.0, lon=23.7), _task(lat=38.0, lon=23.7)) == 1.0

    def test_beyond_max_km_is_zero(self):
        fn = DistanceWeight(max_km=10.0)
        # Athens to Thessaloniki is ~300 km
        assert fn.single(_worker(lat=37.98, lon=23.73), _task(lat=40.64, lon=22.94)) == 0.0

    def test_decay_is_monotone(self):
        fn = DistanceWeight(max_km=1000.0)
        near = fn.single(_worker(lat=38.0, lon=23.7), _task(lat=38.1, lon=23.7))
        far = fn.single(_worker(lat=38.0, lon=23.7), _task(lat=40.0, lon=23.7))
        assert 0 < far < near < 1

    def test_invalid_max_km(self):
        with pytest.raises(ValueError):
            DistanceWeight(max_km=0)

    def test_matrix_bit_equal_to_scalar_oracle(self):
        """The broadcast path must reproduce the per-cell path bit-for-bit."""
        rng = np.random.default_rng(99)
        workers = [
            _worker(i, lat=float(rng.uniform(38.0, 38.2)),
                    lon=float(rng.uniform(23.6, 23.8)))
            for i in range(17)
        ]
        tasks = [
            _task(lat=float(rng.uniform(38.0, 38.2)),
                  lon=float(rng.uniform(23.6, 23.8)))
            for _ in range(23)
        ]
        fn = DistanceWeight(max_km=10.0)
        assert np.array_equal(fn.matrix(workers, tasks),
                              fn.matrix_scalar(workers, tasks))


class TestTravelTimeWeight:
    def test_on_site_is_one(self):
        fn = TravelTimeWeight(speed_kmh=25.0, horizon_s=3600.0)
        assert fn.single(_worker(lat=38.0, lon=23.7), _task(lat=38.0, lon=23.7)) == 1.0

    def test_unreachable_is_zero(self):
        # ~300 km at 25 km/h is a 12 h trip against a 10-minute horizon.
        fn = TravelTimeWeight(speed_kmh=25.0, horizon_s=600.0)
        assert fn.single(_worker(lat=37.98, lon=23.73), _task(lat=40.64, lon=22.94)) == 0.0

    def test_decay_is_monotone_in_distance(self):
        fn = TravelTimeWeight(speed_kmh=25.0, horizon_s=7 * 24 * 3600.0)
        near = fn.single(_worker(lat=38.0, lon=23.7), _task(lat=38.1, lon=23.7))
        far = fn.single(_worker(lat=38.0, lon=23.7), _task(lat=40.0, lon=23.7))
        assert 0 < far < near < 1

    def test_faster_travel_raises_weight(self):
        worker, task = _worker(lat=38.0, lon=23.7), _task(lat=38.1, lon=23.7)
        slow = TravelTimeWeight(speed_kmh=5.0, horizon_s=3600.0).single(worker, task)
        fast = TravelTimeWeight(speed_kmh=50.0, horizon_s=3600.0).single(worker, task)
        assert fast > slow

    @pytest.mark.parametrize("kwargs", [{"speed_kmh": 0}, {"horizon_s": 0},
                                        {"speed_kmh": -1}, {"horizon_s": -1}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            TravelTimeWeight(**kwargs)


class TestHybridWeight:
    def test_blend(self):
        worker = _worker(records=[(TaskCategory.GENERIC, True)])
        task = _task()
        hybrid = HybridWeight(beta=0.5, max_km=10.0)
        value = hybrid.single(worker, task)
        # accuracy=1, distance=1 (same point) -> blend = 1
        assert value == pytest.approx(1.0)

    def test_beta_one_equals_accuracy(self):
        worker = _worker(records=[(TaskCategory.GENERIC, True), (TaskCategory.GENERIC, False)])
        task = _task(lat=1.0)
        assert HybridWeight(beta=1.0).single(worker, task) == pytest.approx(0.5)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            HybridWeight(beta=1.5)


class TestConstantWeight:
    def test_fills_matrix(self):
        matrix = ConstantWeight(0.7).matrix([_worker(0), _worker(1)], [_task()])
        assert np.all(matrix == 0.7)

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            ConstantWeight(1.5)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("accuracy", AccuracyWeight),
            ("distance", DistanceWeight),
            ("travel-time", TravelTimeWeight),
            ("hybrid", HybridWeight),
            ("constant", ConstantWeight),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_weight_function(name), cls)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_weight_function("nope")

    def test_kwargs_forwarded(self):
        fn = make_weight_function("distance", max_km=5.0)
        assert fn.max_km == 5.0
