"""Unit tests for the Eq. 2/3 deadline estimator."""

import numpy as np
import pytest

from repro.core.deadline import DeadlineEstimator
from repro.model.task import TaskCategory
from repro.model.worker import WorkerProfile


def _profile(times, worker_id=0):
    profile = WorkerProfile(worker_id=worker_id)
    for t in times:
        profile.record_completion(t, TaskCategory.GENERIC, True)
    return profile


@pytest.fixture
def estimator():
    return DeadlineEstimator(min_history=3)


class TestTraining:
    def test_untrained_worker_has_no_fit(self, estimator):
        assert estimator.fit_worker(_profile([5.0, 6.0])) is None

    def test_trained_worker_fit(self, estimator):
        fit = estimator.fit_worker(_profile([5.0, 6.0, 20.0]))
        assert fit is not None
        assert fit.k_min == 5.0

    def test_untrained_completion_probability_is_one(self, estimator):
        est = estimator.completion_probability(_profile([5.0]), 60.0)
        assert est.probability == 1.0
        assert not est.trained

    def test_fit_cache_invalidates_on_new_history(self, estimator):
        profile = _profile([5.0, 6.0, 20.0])
        first = estimator.fit_worker(profile)
        assert estimator.fit_worker(profile) is first  # cached
        profile.record_completion(50.0, TaskCategory.GENERIC, True)
        second = estimator.fit_worker(profile)
        assert second is not first
        assert second.n_samples == 4


class TestEquation3:
    def test_expired_deadline_probability_zero(self, estimator):
        est = estimator.completion_probability(_profile([5.0, 6.0, 7.0]), -1.0)
        assert est.probability == 0.0

    def test_generous_deadline_high_probability(self, estimator):
        est = estimator.completion_probability(_profile([5.0, 6.0, 7.0]), 1000.0)
        assert est.probability > 0.9

    def test_deadline_below_typical_time_low_probability(self, estimator):
        # History ~100 s; 50 s deadline is below k_min -> CCDF 1 -> prob 0.
        est = estimator.completion_probability(_profile([100.0, 105.0, 110.0]), 50.0)
        assert est.probability == 0.0

    def test_matrix_matches_scalar(self, estimator):
        workers = [_profile([5.0, 6.0, 7.0], 0), _profile([50.0, 60.0, 70.0], 1)]
        ttds = np.array([30.0, 80.0, -5.0])
        matrix = estimator.completion_probability_matrix(workers, ttds)
        assert matrix.shape == (2, 3)
        for i, worker in enumerate(workers):
            for j, ttd in enumerate(ttds):
                scalar = estimator.completion_probability(worker, float(ttd))
                assert matrix[i, j] == pytest.approx(scalar.probability)

    def test_matrix_untrained_rows_one_except_expired(self, estimator):
        matrix = estimator.completion_probability_matrix(
            [_profile([5.0])], np.array([10.0, -1.0, 0.0])
        )
        assert list(matrix[0]) == [1.0, 0.0, 0.0]


class TestEquation2:
    def test_window_shrinks_as_time_passes(self, estimator):
        profile = _profile([5.0, 6.0, 7.0, 9.0, 12.0])
        ttd = 60.0
        probs = [
            estimator.window_probability(profile, t, ttd).probability
            for t in (0.0, 10.0, 30.0, 55.0)
        ]
        assert all(a >= b for a, b in zip(probs, probs[1:]))
        assert probs[-1] < probs[0]

    def test_empty_window_zero(self, estimator):
        profile = _profile([5.0, 6.0, 7.0])
        est = estimator.window_probability(profile, elapsed=60.0, time_to_deadline=60.0)
        assert est.probability == 0.0

    def test_negative_elapsed_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.window_probability(_profile([5.0, 6.0, 7.0]), -1.0, 60.0)

    def test_identity_with_ccdf(self, estimator):
        """Eq. 2 equals P(t) - P(TTD) on the fitted CCDF."""
        profile = _profile([5.0, 6.0, 7.0, 30.0])
        fit = estimator.fit_worker(profile)
        t, ttd = 10.0, 60.0
        expected = float(fit.ccdf(t)) - float(fit.ccdf(ttd))
        est = estimator.window_probability(profile, t, ttd)
        assert est.probability == pytest.approx(max(0.0, expected))


class TestReassignmentRule:
    def test_untrained_never_reassigned(self, estimator):
        assert not estimator.should_reassign(_profile([5.0]), 1000.0, 10.0, 0.1)

    def test_fresh_assignment_not_reassigned(self, estimator):
        profile = _profile([5.0, 6.0, 7.0])
        assert not estimator.should_reassign(profile, 1.0, 60.0, 0.1)

    def test_overdue_worker_reassigned(self, estimator):
        # Worker typically finishes in 5-7 s; 50 s elapsed with 60 s budget
        # leaves a sliver of probability mass -> reassign at 10%.
        profile = _profile([5.0, 6.0, 7.0])
        assert estimator.should_reassign(profile, 50.0, 60.0, 0.1)

    def test_expired_task_left_with_worker(self, estimator):
        """No reassignment once the deadline passed (paper §V-C discussion:
        no other worker could beat it either)."""
        profile = _profile([5.0, 6.0, 7.0])
        assert not estimator.should_reassign(profile, 70.0, 60.0, 0.1)

    def test_threshold_zero_never_fires(self, estimator):
        profile = _profile([5.0, 6.0, 7.0])
        assert not estimator.should_reassign(profile, 55.0, 60.0, 0.0)

    def test_invalid_threshold_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.should_reassign(_profile([5.0, 6.0, 7.0]), 1.0, 60.0, 1.5)

    def test_min_history_zero_activates_immediately(self):
        estimator = DeadlineEstimator(min_history=0)
        profile = _profile([5.0])
        assert estimator.fit_worker(profile) is not None
