"""Admission-control unit tests on the deterministic DES clock.

The controller reads time through the :class:`EventClock` protocol, so the
token-bucket refill math and the guard ordering are tested exactly — no
wall-clock tolerance anywhere.
"""

import pytest

from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.sim.engine import Engine


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=2)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)

    def test_burst_then_reject_with_exact_retry_hint(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.admit(0.0) == (True, 0.0)
        assert bucket.admit(0.0) == (True, 0.0)
        ok, retry_after = bucket.admit(0.0)
        assert not ok
        assert retry_after == pytest.approx(1.0)  # (1 - 0) / rate

    def test_partial_refill_shrinks_retry_hint(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.admit(0.0)
        bucket.admit(0.0)
        ok, retry_after = bucket.admit(0.4)  # 0.4 tokens accrued
        assert not ok
        assert retry_after == pytest.approx(0.6)
        ok, _ = bucket.admit(1.0)  # full token by t=1.0
        assert ok
        assert bucket.tokens == pytest.approx(0.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=5.0, burst=3)
        ok, _ = bucket.admit(100.0)  # long idle: accrual clamps to burst
        assert ok
        assert bucket.tokens == pytest.approx(2.0)


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionConfig(max_in_flight=0)
        with pytest.raises(ValueError, match="backlog_retry_after"):
            AdmissionConfig(backlog_retry_after=0.0)


def make_controller(config, backlog, registry=None):
    engine = Engine()
    controller = AdmissionController(
        config, clock=engine, backlog_fn=lambda: backlog[0], registry=registry
    )
    return engine, controller


class TestAdmissionController:
    def test_backlog_guard_first_and_does_not_drain_tokens(self):
        config = AdmissionConfig(
            rate=1.0, burst=1, max_in_flight=2, backlog_retry_after=2.5
        )
        backlog = [2]
        _, controller = make_controller(config, backlog)
        decision = controller.check()
        assert not decision.admitted
        assert decision.reason == "backlog"
        assert decision.retry_after == 2.5
        # Capacity returns: the single bucket token is still there, proving
        # the backlog rejection did not consume it.
        backlog[0] = 0
        assert controller.check().admitted
        # Bucket now empty at t=0: next rejection is the bucket's.
        decision = controller.check()
        assert decision.reason == "rate"
        assert decision.retry_after == pytest.approx(1.0)

    def test_bucket_refills_on_the_injected_clock(self):
        config = AdmissionConfig(rate=2.0, burst=1, max_in_flight=10)
        backlog = [0]
        engine, controller = make_controller(config, backlog)
        assert controller.check().admitted
        assert controller.check().reason == "rate"
        engine.run(until=0.5)  # 0.5 clock seconds = one token at rate 2/s
        assert controller.check().admitted

    def test_counters(self):
        config = AdmissionConfig(rate=1.0, burst=1, max_in_flight=1)
        backlog = [0]
        _, controller = make_controller(config, backlog)
        assert controller.check().admitted
        assert controller.check().reason == "rate"
        backlog[0] = 1
        assert controller.check().reason == "backlog"
        assert controller.admitted == 1
        assert controller.rejected_rate == 1
        assert controller.rejected_backlog == 1

    def test_metrics_registry_wiring(self):
        registry = MetricsRegistry()
        config = AdmissionConfig(rate=1.0, burst=1, max_in_flight=1)
        backlog = [0]
        _, controller = make_controller(config, backlog, registry=registry)
        controller.check()  # admitted
        controller.check()  # rejected: rate
        backlog[0] = 1
        controller.check()  # rejected: backlog
        text = prometheus_text(registry)
        assert "service_admitted_total" in text
        assert 'reason="rate"' in text
        assert 'reason="backlog"' in text
