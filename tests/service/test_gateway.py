"""ServiceGateway over real sockets: HTTP surface, backpressure, drain.

Every test boots a gateway on an ephemeral port inside ``asyncio.run`` and
talks to it with the loadgen's :class:`AsyncHttpClient` — the same code
path a live client uses.  ``time_scale`` accelerates the middleware clock
so batch triggers fire in tens of wall milliseconds.

The overload test is the PR's acceptance criterion: past the admission
rate the gateway sheds with 429 + ``Retry-After`` while the latency of
*admitted* tasks stays bounded.
"""

import asyncio

import pytest

from repro.platform.policies import react_policy
from repro.service.admission import AdmissionConfig
from repro.service.gateway import GatewayConfig, ServiceGateway
from repro.service.loadgen import AsyncHttpClient, LoadgenConfig, run_loadgen

FAST = GatewayConfig(time_scale=50.0)


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


async def boot(config=FAST, policy=None):
    gateway = ServiceGateway(config, policy=policy)
    await gateway.start()
    return gateway


async def poll_for_assignment(client, worker_id, attempts=200):
    for _ in range(attempts):
        status, body = await client.request(
            "POST", f"/workers/{worker_id}/heartbeat"
        )
        assert status == 200, body
        if body["assignment"]:
            return body["assignment"]
        await asyncio.sleep(0.02)
    raise AssertionError("no assignment delivered")


class TestHttpSurface:
    def test_health_ready_metrics(self):
        async def main():
            gateway = await boot()
            client = AsyncHttpClient(gateway.host, gateway.port)
            try:
                assert await client.request("GET", "/healthz") == (
                    200,
                    {"status": "ok"},
                )
                assert await client.request("GET", "/readyz") == (
                    200,
                    {"status": "ready"},
                )
                status, text = await client.request("GET", "/metrics")
                assert status == 200
                assert b"service_workers" in text
                assert b"service_in_flight" in text
            finally:
                await client.close()
                await gateway.stop()

        run_async(main())

    def test_full_task_lifecycle_over_http(self):
        async def main():
            gateway = await boot()
            client = AsyncHttpClient(gateway.host, gateway.port)
            try:
                status, body = await client.request("POST", "/workers", {})
                assert status == 201
                worker_id = body["worker_id"]

                status, body = await client.request(
                    "POST", "/tasks", {"deadline": 90.0}
                )
                assert status == 201 and body["status"] == "admitted"
                task_id = body["task_id"]

                assignment = await poll_for_assignment(client, worker_id)
                assert assignment["task_id"] == task_id
                assert assignment["generation"] == 1

                status, body = await client.request(
                    "POST", f"/workers/{worker_id}/answer", {"task_id": task_id}
                )
                assert status == 200
                assert body == {"status": "completed", "met_deadline": True}
                assert gateway.completed == 1

                status, body = await client.request("GET", f"/tasks/{task_id}")
                assert status == 200
                assert body["phase"] == "completed"
                assert body["met_deadline"] is True

                status, text = await client.request("GET", "/metrics")
                assert b"service_completed_total 1" in text

                status, body = await client.request(
                    "POST", f"/workers/{worker_id}/deregister"
                )
                assert status == 200
                # Deregistered: the next heartbeat is told to re-register.
                status, body = await client.request(
                    "POST", f"/workers/{worker_id}/heartbeat"
                )
                assert status == 404
            finally:
                await client.close()
                await gateway.stop()

        run_async(main())

    def test_error_paths(self):
        async def main():
            gateway = await boot()
            client = AsyncHttpClient(gateway.host, gateway.port)
            try:
                status, _ = await client.request("GET", "/nope")
                assert status == 404
                status, _ = await client.request("GET", "/tasks/12345")
                assert status == 404
                status, _ = await client.request("GET", "/tasks/abc")
                assert status == 400
                status, _ = await client.request(
                    "POST", "/workers/7/answer", {"task_id": 1}
                )
                assert status == 404  # unknown worker
                status, _ = await client.request(
                    "POST", "/tasks", {"deadline": -5.0}
                )
                assert status == 400
                status, _ = await client.request(
                    "POST", "/tasks", {"category": "no-such-category"}
                )
                assert status == 400
                status, _ = await client.request(
                    "POST", "/tasks", {"latitude": "x", "longitude": 1.0}
                )
                assert status == 400

                status, body = await client.request(
                    "POST", "/workers", {"worker_id": 5}
                )
                assert status == 201
                status, body = await client.request(
                    "POST", "/workers", {"worker_id": 5}
                )
                assert status == 409
                status, _ = await client.request(
                    "POST", "/workers/5/answer", {}
                )
                assert status == 400  # answer requires task_id
            finally:
                await client.close()
                await gateway.stop()

        run_async(main())


class TestHandlerErrorCounter:
    def test_handler_crash_increments_counter_and_returns_500(self):
        from repro.service.httpd import HttpServer

        class Counter:
            def __init__(self):
                self.count = 0.0

            def inc(self, amount: float = 1.0) -> None:
                self.count += amount

        async def main():
            counter = Counter()

            async def exploding(request):
                raise RuntimeError("boom")

            server = HttpServer(exploding, error_counter=counter)
            host, port = await server.start()
            client = AsyncHttpClient(host, port)
            try:
                status, body = await client.request("GET", "/healthz")
                assert status == 500
                assert body == {"error": "internal error"}
            finally:
                await client.close()
                await server.close()
            return counter.count

        assert run_async(main()) == 1.0

    def test_gateway_exports_handler_error_metric(self):
        async def main():
            gateway = await boot()
            client = AsyncHttpClient(gateway.host, gateway.port)
            try:
                status, text = await client.request("GET", "/metrics")
                assert status == 200
                assert b"service_handler_errors_total 0" in text
            finally:
                await client.close()
                await gateway.stop()

        run_async(main())


class TestBackpressure:
    def test_rate_limit_returns_429_with_retry_hint(self):
        async def main():
            config = GatewayConfig(
                time_scale=1.0,
                admission=AdmissionConfig(rate=1.0, burst=1, max_in_flight=100),
            )
            gateway = await boot(config)
            client = AsyncHttpClient(gateway.host, gateway.port)
            try:
                status, _ = await client.request("POST", "/tasks", {})
                assert status == 201
                status, body = await client.request("POST", "/tasks", {})
                assert status == 429
                assert body["reason"] == "rate"
                assert body["retry_after"] > 0
            finally:
                await client.close()
                await gateway.stop()

        run_async(main())

    def test_backlog_bound_returns_429(self):
        async def main():
            config = GatewayConfig(
                time_scale=1.0,
                admission=AdmissionConfig(
                    rate=100.0, burst=100, max_in_flight=1
                ),
            )
            gateway = await boot(config)
            client = AsyncHttpClient(gateway.host, gateway.port)
            try:
                status, _ = await client.request("POST", "/tasks", {})
                assert status == 201  # no workers: stays in flight
                status, body = await client.request("POST", "/tasks", {})
                assert status == 429
                assert body["reason"] == "backlog"
                assert body["retry_after"] == pytest.approx(1.0)
            finally:
                await client.close()
                await gateway.stop()

        run_async(main())

    def test_overload_sheds_while_admitted_latency_stays_bounded(self):
        """Acceptance: open-loop arrivals far above the admission rate.

        The bucket admits ~0.5/clock-second (5/wall-second at scale 10)
        against ~40 submits/second, so most submits bounce with 429; the
        few admitted tasks flow through match -> dispatch -> answer fast
        enough that completed-task p95 stays a small number of wall
        seconds, nowhere near the 90 clock-second deadline.
        """

        async def main():
            config = GatewayConfig(
                time_scale=10.0,
                admission=AdmissionConfig(rate=0.5, burst=2, max_in_flight=1000),
            )
            gateway = await boot(config, policy=react_policy(batch_threshold=1))
            try:
                report = await run_loadgen(
                    LoadgenConfig(
                        host=gateway.host,
                        port=gateway.port,
                        arrival_rate=40.0,
                        duration=2.0,
                        workers=8,
                        heartbeat_interval=0.02,
                        work_time_min=0.05,
                        work_time_max=0.15,
                        drain_grace=5.0,
                        seed=20130521,
                    )
                )
            finally:
                await gateway.stop()
            return report

        report = run_async(main())
        assert report.rejected > 0
        assert report.rejected_by_reason.get("rate", 0) > 0
        assert report.rejected > report.admitted  # shedding dominated
        assert report.completed > 0
        assert report.errors == 0
        p95 = report.percentile(95)
        assert p95 is not None and p95 < 5.0


class TestLifecycle:
    def test_double_start_raises(self):
        async def main():
            gateway = await boot()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await gateway.start()
            finally:
                await gateway.stop()

        run_async(main())

    def test_drain_unreadies_then_closes_the_listener(self):
        async def main():
            config = GatewayConfig(time_scale=50.0, drain_timeout=0.5)
            gateway = await boot(config)
            client = AsyncHttpClient(gateway.host, gateway.port)
            # One in-flight task with no workers keeps the backlog > 0, so
            # stop() sits in its drain loop until drain_timeout expires.
            status, _ = await client.request("POST", "/tasks", {})
            assert status == 201
            stopper = asyncio.ensure_future(gateway.stop())
            await asyncio.sleep(0.05)
            assert not gateway.ready
            status, body = await client.request("GET", "/readyz")
            assert status == 503 and body == {"status": "draining"}
            status, _ = await client.request("POST", "/tasks", {})
            assert status == 503  # draining refuses new work
            status, _ = await client.request("POST", "/workers", {})
            assert status == 503
            await stopper
            await client.close()
            with pytest.raises((ConnectionError, OSError)):
                probe = AsyncHttpClient(gateway.host, gateway.port)
                try:
                    await probe.request("GET", "/healthz")
                finally:
                    await probe.close()

        run_async(main())
