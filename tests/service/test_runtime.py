"""WallClockRuntime unit tests beyond the shared conformance battery.

The cross-clock contract (ordering, cohorts, cancellation, ``now``
semantics) lives in ``test_clock_protocol.py``; this file covers the
runtime-only surface: lifecycle (close/drained/run_for), the lazy
cancellation counters, and constructor validation.
"""

import asyncio

import pytest

from repro.service.runtime import ServiceRuntimeError, WallClockRuntime
from repro.sim.events import EventKind

#: Clock seconds per wall second: scenarios finish in milliseconds.
SCALE = 200.0


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30.0))


class TestConstruction:
    def test_time_scale_validated(self):
        async def main():
            for bad in (0.0, -1.0):
                with pytest.raises(ValueError, match="time_scale"):
                    WallClockRuntime(time_scale=bad)

        run_async(main())

    def test_requires_running_loop(self):
        with pytest.raises(RuntimeError):
            WallClockRuntime()

    def test_properties(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            assert runtime.time_scale == SCALE
            assert not runtime.closed
            assert runtime.pending == 0
            assert runtime.dispatched == 0
            assert runtime.peek_time() is None

        run_async(main())


class TestLifecycle:
    def test_close_refuses_further_scheduling(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            runtime.schedule(5.0, EventKind.CALLBACK, lambda _e: None)
            runtime.close()
            assert runtime.closed
            assert runtime.pending == 0  # pending events dropped
            with pytest.raises(ServiceRuntimeError):
                runtime.schedule(1.0, EventKind.CALLBACK, lambda _e: None)
            with pytest.raises(ServiceRuntimeError):
                runtime.schedule_at(1.0, EventKind.CALLBACK, lambda _e: None)

        run_async(main())

    def test_close_is_idempotent(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            runtime.close()
            runtime.close()

        run_async(main())

    def test_drained_resolves_immediately_when_idle(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            await runtime.drained()  # empty heap: no wait
            runtime.close()
            await runtime.drained()  # closed: no wait

        run_async(main())

    def test_drained_waits_for_chained_events(self):
        fired = []

        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)

            def second(_event):
                fired.append("second")

            def first(_event):
                fired.append("first")
                runtime.schedule(1.0, EventKind.CALLBACK, second)

            runtime.schedule(1.0, EventKind.CALLBACK, first)
            await runtime.drained()

        run_async(main())
        assert fired == ["first", "second"]

    def test_drained_resolves_on_close_with_pending_work(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            # Far-future event the test never waits out.
            runtime.schedule(10_000.0, EventKind.CALLBACK, lambda _e: None)
            waiter = asyncio.ensure_future(runtime.drained())
            await asyncio.sleep(0)
            assert not waiter.done()
            runtime.close()
            await asyncio.wait_for(waiter, timeout=5.0)

        run_async(main())

    def test_run_for_lets_timers_fire(self):
        fired = []

        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            runtime.schedule(1.0, EventKind.CALLBACK, lambda _e: fired.append(1))
            await runtime.run_for(5.0)

        run_async(main())
        assert fired == [1]


class TestQueueIntrospection:
    def test_pending_counts_cancelled_pending_active_does_not(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            keep = runtime.schedule_at(5.0, EventKind.CALLBACK, lambda _e: None)
            drop = runtime.schedule_at(2.0, EventKind.CALLBACK, lambda _e: None)
            runtime.cancel(drop)
            assert runtime.pending == 2
            assert runtime.pending_active == 1
            # peek_time skips the cancelled head and reports the live event.
            assert runtime.peek_time() == keep.time == 5.0
            runtime.close()

        run_async(main())

    def test_dispatched_counts_and_transient_is_inert(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            event = runtime.schedule(
                0.0, EventKind.CALLBACK, lambda _e: None, transient=True
            )
            await runtime.drained()
            assert runtime.dispatched == 1
            # No pool recycling on the wall clock: the handle stays intact.
            assert not event.cancelled

        run_async(main())

    def test_now_is_monotone_between_reads(self):
        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            readings = [runtime.now for _ in range(50)]
            assert readings == sorted(readings)

        run_async(main())


class TestSlicedDraining:
    def test_backlogged_drain_does_not_starve_the_loop(self):
        """A chain that can't catch up must still let other loop work run.

        Each firing burns more wall time than the next event's delay is
        worth, so the drain loop is permanently behind: without the
        DRAIN_SLICE_WALL yield, ``_fire`` would never return and the
        concurrent sleep below would never complete (the loop is starved
        exactly the way a backlogged gateway starves its sockets).
        """
        import time

        async def main():
            runtime = WallClockRuntime(time_scale=SCALE)
            fired = [0]

            def spin(_event):
                fired[0] += 1
                # 2 ms of wall work, then reschedule 1 ms (wall) out: the
                # chain outruns the clock forever.
                time.sleep(0.002)
                runtime.schedule(0.001 * SCALE, EventKind.CALLBACK, spin)

            runtime.schedule(0.0, EventKind.CALLBACK, spin)
            # This sleep only completes if the drain yields the loop.
            await asyncio.wait_for(asyncio.sleep(0.2), timeout=5.0)
            assert fired[0] > 0
            runtime.close()

        run_async(main())
