"""LiveRegionServer on the deterministic DES engine.

The acceptance claim of the live-service PR is that the four platform
component classes run unmodified under either clock.  Here the live bridge
— pull-delivery inboxes, answer staleness, AMT expiry, liveness culling —
is exercised on the :class:`~repro.sim.engine.Engine`, where every timing
assertion is exact; the wall-clock side of the same claim is the gateway
suite plus the loadgen round-trip.
"""

import pytest

from repro.model.task import Task, TaskCategory, TaskPhase
from repro.model.worker import WorkerProfile
from repro.platform.policies import react_policy
from repro.service.bridge import LiveRegionServer
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def build_live_server(**kwargs):
    engine = Engine()
    server = LiveRegionServer(
        clock=engine,
        policy=react_policy(batch_threshold=1),
        rng=RngRegistry(seed=7),
        **kwargs,
    )
    server.start()
    return engine, server


def make_task(deadline=60.0):
    return Task(
        latitude=5.0,
        longitude=5.0,
        deadline=deadline,
        reward=0.05,
        category=TaskCategory.GENERIC,
    )


def register(server, worker_id=1):
    profile = WorkerProfile(worker_id=worker_id, latitude=5.0, longitude=5.0)
    server.register_worker(profile)
    return profile


class TestDispatchAndAnswer:
    def test_end_to_end_on_the_des_engine(self):
        engine, server = build_live_server()
        register(server)
        task = make_task()
        server.submit_task(task)
        engine.run(until=1.0)  # dispatch the threshold-triggered batch

        notice = server.heartbeat(1)
        assert notice is not None
        assert notice.task_id == task.task_id
        assert notice.worker_id == 1
        assert notice.generation == 1
        assert notice.deadline_at == task.absolute_deadline
        # The inbox slot is consumed: the next poll is empty.
        assert server.heartbeat(1) is None

        engine.run(until=5.0)
        outcome = server.submit_answer(1, task.task_id)
        assert outcome.completed and outcome.met_deadline
        assert task.phase is TaskPhase.COMPLETED
        assert server.in_flight == 0

        summary = server.drain_and_summary()
        assert summary["received"] == 1
        assert summary["pending_unassigned"] == 0

    def test_answer_frees_worker_for_next_task(self):
        engine, server = build_live_server()
        register(server)
        first, second = make_task(), make_task()
        server.submit_task(first)
        engine.run(until=1.0)
        assert server.heartbeat(1).task_id == first.task_id
        server.submit_answer(1, first.task_id)
        # The completion's maybe_trigger matches queued work to the freed
        # worker on the next engine step.
        server.submit_task(second)
        engine.run(until=2.0)
        assert server.heartbeat(1).task_id == second.task_id

    def test_answer_unknown_worker_and_task(self):
        engine, server = build_live_server()
        register(server)
        task = make_task()
        server.submit_task(task)
        assert server.submit_answer(99, task.task_id).status == "unknown_worker"
        assert server.submit_answer(1, 10_000_000).status == "unknown_task"


class TestRunningExpiry:
    def test_expiry_withdraws_and_releases_the_worker(self):
        engine, server = build_live_server()
        profile = register(server)
        task = make_task(deadline=2.0)
        server.submit_task(task)
        engine.run(until=1.0)
        assert profile.current_task == task.task_id
        # The worker never polls; the deadline lapses with the task out.
        engine.run(until=10.0)
        assert task.phase is not TaskPhase.ASSIGNED
        assert profile.current_task is None
        assert server.metrics.expiry_returns == 1
        # The undelivered notice died with the assignment.
        assert server.heartbeat(1) is None

    def test_answer_after_expiry_is_stale(self):
        engine, server = build_live_server()
        register(server)
        task = make_task(deadline=2.0)
        server.submit_task(task)
        engine.run(until=1.0)
        notice = server.heartbeat(1)
        assert notice is not None
        engine.run(until=10.0)  # deadline passes while the worker dawdles
        outcome = server.submit_answer(1, task.task_id)
        assert outcome.status == "stale"
        assert not outcome.completed
        assert server.metrics.summary()["completed"] == 0


class TestWorkerLifecycle:
    def test_heartbeat_unknown_worker_raises(self):
        _, server = build_live_server()
        with pytest.raises(KeyError):
            server.heartbeat(42)

    def test_deregister_requeues_in_flight_task(self):
        engine, server = build_live_server()
        register(server)
        task = make_task()
        server.submit_task(task)
        engine.run(until=1.0)
        assert task.phase is TaskPhase.ASSIGNED
        server.deregister_worker(1)
        assert task.phase is TaskPhase.UNASSIGNED
        with pytest.raises(KeyError):
            server.heartbeat(1)
        # A fresh worker picks the requeued task up.
        register(server, worker_id=2)
        engine.run(until=3.0)
        notice = server.heartbeat(2)
        assert notice is not None and notice.task_id == task.task_id
        assert notice.generation == 2

    def test_liveness_cull_deregisters_silent_workers(self):
        engine, server = build_live_server(
            liveness_timeout=5.0, liveness_interval=1.0
        )
        register(server)
        engine.run(until=10.0)  # never heartbeats: culled after 5 s
        assert 1 not in server.profiling
        with pytest.raises(KeyError):
            server.heartbeat(1)

    def test_heartbeat_keeps_worker_alive(self):
        engine, server = build_live_server(
            liveness_timeout=5.0, liveness_interval=1.0
        )
        register(server)
        for t in (3.0, 6.0, 9.0):
            engine.run(until=t)
            server.heartbeat(1)
        engine.run(until=12.0)
        assert 1 in server.profiling

    def test_add_worker_alias_ignores_behavior(self):
        _, server = build_live_server()
        server.add_worker(
            WorkerProfile(worker_id=3, latitude=5.0, longitude=5.0),
            behavior=object(),
        )
        assert 3 in server.profiling


class TestTaskStatus:
    def test_status_through_the_lifecycle(self):
        engine, server = build_live_server()
        register(server)
        task = make_task()
        server.submit_task(task)
        status = server.task_status(task.task_id)
        assert status["phase"] in ("unassigned", "assigned")
        assert status["met_deadline"] is None
        engine.run(until=1.0)
        server.submit_answer(1, task.task_id)
        status = server.task_status(task.task_id)
        assert status["phase"] == "completed"
        assert status["met_deadline"] is True
        assert status["assignments"] == 1

    def test_unknown_task_raises(self):
        _, server = build_live_server()
        with pytest.raises(KeyError):
            server.task_status(123456789)


class TestConstruction:
    def test_double_start_raises(self):
        _, server = build_live_server()
        with pytest.raises(RuntimeError, match="started"):
            server.start()

    def test_liveness_validation(self):
        engine = Engine()
        with pytest.raises(ValueError, match="liveness_timeout"):
            LiveRegionServer(
                clock=engine,
                policy=react_policy(),
                rng=RngRegistry(seed=1),
                liveness_timeout=0.0,
            )
        with pytest.raises(ValueError, match="liveness_interval"):
            LiveRegionServer(
                clock=engine,
                policy=react_policy(),
                rng=RngRegistry(seed=1),
                liveness_interval=-1.0,
            )

    def test_stop_disarms_timers(self):
        engine, server = build_live_server(
            liveness_timeout=5.0, liveness_interval=1.0
        )
        server.stop()
        engine.run(until=50.0)
        assert engine.pending_active == 0
