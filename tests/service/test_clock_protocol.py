"""Clock-protocol conformance: one battery, two EventClock implementations.

Every scenario here runs verbatim against the DES
:class:`~repro.sim.engine.Engine` and the asyncio
:class:`~repro.service.runtime.WallClockRuntime` (at a high ``time_scale``
so a few clock seconds are a few wall milliseconds).  This is the contract
that lets the four platform components run unmodified under either clock:
dispatch ordering, coincident-event cohorts, cancellation, callback
chaining, and ``now`` monotonicity must agree.

Wall-clock caveat baked into the assertions: the runtime's ``now`` can run
*ahead* of an event's scheduled time (a timer can only fire late), so the
battery asserts ``now >= event.time`` plus cohort-frozen equality, not
exact equality — the DES engine trivially satisfies the same predicate.
"""

import asyncio

import pytest

from repro.service.runtime import WallClockRuntime
from repro.sim.engine import Engine, SimulationError
from repro.sim.events import EventKind

CLOCKS = ("engine", "wallclock")

#: Clock seconds the wall runtime compresses into one wall second.
TIME_SCALE = 500.0


def run_scenario(clock_kind, setup, horizon=50.0):
    """Build a scenario on a fresh clock, run it to quiescence, check it.

    ``setup(clock) -> check`` schedules events and returns the assertion
    callback, invoked as ``check(clock)`` after every event dispatched.
    """
    if clock_kind == "engine":
        engine = Engine()
        check = setup(engine)
        engine.run(until=horizon)
        check(engine)
        return

    async def main():
        runtime = WallClockRuntime(time_scale=TIME_SCALE)
        check = setup(runtime)
        await asyncio.wait_for(runtime.drained(), timeout=30.0)
        return runtime, check

    runtime, check = asyncio.run(main())
    check(runtime)


@pytest.fixture(params=CLOCKS)
def clock_kind(request):
    return request.param


class TestOrdering:
    def test_dispatch_in_time_order(self, clock_kind):
        fired = []

        def setup(clock):
            for label, delay in (("c", 3.0), ("a", 1.0), ("b", 2.0)):
                clock.schedule(
                    delay,
                    EventKind.CALLBACK,
                    (lambda lab: lambda _e: fired.append(lab))(label),
                )
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert fired == ["a", "b", "c"]

    def test_coincident_events_fire_in_schedule_order(self, clock_kind):
        fired = []

        def setup(clock):
            for label in ("first", "second", "third"):
                clock.schedule_at(
                    2.0,
                    EventKind.CALLBACK,
                    (lambda lab: lambda _e: fired.append(lab))(label),
                )
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert fired == ["first", "second", "third"]

    def test_priority_orders_coincident_events(self, clock_kind):
        """Lower non-negative priority dispatches first at one instant.

        (A *negative* priority is the sentinel for "use the kind's own
        priority" — ``Event.__post_init__`` rewrites it to ``int(kind)`` —
        so explicit ordering must use non-negative values.)
        """
        fired = []

        def setup(clock):
            clock.schedule_at(
                2.0, EventKind.CALLBACK, lambda _e: fired.append("low"), priority=9
            )
            clock.schedule_at(
                2.0, EventKind.CALLBACK, lambda _e: fired.append("high"), priority=1
            )
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert fired == ["high", "low"]

    def test_callback_chaining(self, clock_kind):
        """An event scheduled from inside a callback fires later."""
        fired = []

        def setup(clock):
            def second(_event):
                fired.append("second")

            def first(_event):
                fired.append("first")
                clock.schedule(1.0, EventKind.CALLBACK, second)

            clock.schedule(1.0, EventKind.CALLBACK, first)
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert fired == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_never_fires(self, clock_kind):
        fired = []

        def setup(clock):
            victim = clock.schedule(
                2.0, EventKind.CALLBACK, lambda _e: fired.append("victim")
            )
            clock.schedule(
                1.0, EventKind.CALLBACK, lambda _e: clock.cancel(victim)
            )
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert fired == []

    def test_cancellation_within_a_cohort(self, clock_kind):
        """An earlier coincident member can cancel a later one."""
        fired = []

        def setup(clock):
            victim_box = []

            def killer(_event):
                fired.append("killer")
                clock.cancel(victim_box[0])

            # Same (time, priority), earlier seq: the killer walks the
            # cohort first and flags its coincident peer before dispatch
            # reaches it.
            killer_event = clock.schedule_at(2.0, EventKind.CALLBACK, killer)
            victim = clock.schedule_at(
                2.0, EventKind.CALLBACK, lambda _e: fired.append("victim")
            )
            victim_box.append(victim)
            assert killer_event.seq < victim.seq
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert fired == ["killer"]


class TestCohortDispatch:
    def test_coincident_same_callback_events_batch(self, clock_kind):
        """N coincident events of one callback reach the handler as one call."""
        calls = []

        def setup(clock):
            def member(_event):  # pragma: no cover - replaced by the handler
                raise AssertionError("cohort member dispatched individually")

            def handler(now, events):
                calls.append((now, [e.payload for e in events]))

            clock.register_cohort_handler(member, handler)
            for payload in (1, 2, 3):
                clock.schedule_at(2.0, EventKind.CALLBACK, member, payload=payload)
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert len(calls) == 1
        now, payloads = calls[0]
        assert payloads == [1, 2, 3]
        assert now >= 2.0

    def test_batching_is_consecutive_only(self, clock_kind):
        """A different callback interleaved in seq order splits the batch."""
        calls = []
        other = []

        def setup(clock):
            def member(_event):  # pragma: no cover - replaced by the handler
                raise AssertionError("unreachable")

            def handler(now, events):
                calls.append([e.payload for e in events])

            clock.register_cohort_handler(member, handler)
            clock.schedule_at(2.0, EventKind.CALLBACK, member, payload="a1")
            clock.schedule_at(2.0, EventKind.CALLBACK, member, payload="a2")
            clock.schedule_at(
                2.0, EventKind.CALLBACK, lambda _e: other.append("b")
            )
            clock.schedule_at(2.0, EventKind.CALLBACK, member, payload="a3")
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert calls == [["a1", "a2"], ["a3"]]
        assert other == ["b"]

    def test_unregister_restores_individual_dispatch(self, clock_kind):
        individual = []

        def setup(clock):
            def member(event):
                individual.append(event.payload)

            def handler(now, events):  # pragma: no cover - unregistered
                raise AssertionError("handler should be unregistered")

            clock.register_cohort_handler(member, handler)
            clock.unregister_cohort_handler(member)
            clock.schedule_at(2.0, EventKind.CALLBACK, member, payload="x")
            clock.schedule_at(2.0, EventKind.CALLBACK, member, payload="y")
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert individual == ["x", "y"]


class TestNowSemantics:
    def test_now_monotone_and_frozen_per_cohort(self, clock_kind):
        samples = []

        def setup(clock):
            def sample(_event):
                samples.append(clock.now)

            # Two cohorts of two coincident members each.
            for t in (1.0, 2.0):
                clock.schedule_at(t, EventKind.CALLBACK, sample)
                clock.schedule_at(t, EventKind.CALLBACK, sample)
            return lambda clock: None

        run_scenario(clock_kind, setup)
        assert len(samples) == 4
        # Monotone nondecreasing across all dispatches.
        assert samples == sorted(samples)
        # Frozen within each coincident cohort: members see the same instant.
        assert samples[0] == samples[1]
        assert samples[2] == samples[3]
        # Never before the scheduled time.
        assert samples[0] >= 1.0 and samples[2] >= 2.0

    def test_now_does_not_retreat_after_dispatch(self, clock_kind):
        observed = []

        def setup(clock):
            clock.schedule(1.0, EventKind.CALLBACK, lambda _e: observed.append(clock.now))

            def check(clock):
                assert clock.now >= observed[0]

            return check

        run_scenario(clock_kind, setup)

    def test_schedule_into_past_raises(self, clock_kind):
        def setup(clock):
            with pytest.raises(SimulationError):
                clock.schedule(-1.0, EventKind.CALLBACK, lambda _e: None)
            with pytest.raises(SimulationError):
                clock.schedule_at(-5.0, EventKind.CALLBACK, lambda _e: None)
            return lambda clock: None

        run_scenario(clock_kind, setup)
