"""Unit tests for the per-requester budget ledger."""

import pytest

from repro.model.task import Task
from repro.scenarios.budget import BudgetLedger


def _task(requester=0, reward=0.05):
    return Task(
        latitude=0.0, longitude=0.0, deadline=60.0,
        reward=reward, requester_id=requester,
    )


class TestBudgetLedger:
    def test_allows_until_exhausted(self):
        ledger = BudgetLedger({0: 0.10})
        task = _task(reward=0.05)
        assert ledger.allows(task)
        ledger.charge(task)
        assert ledger.allows(_task(reward=0.05))
        ledger.charge(_task(reward=0.05))
        assert not ledger.allows(_task(reward=0.05))
        assert ledger.exhausted_requesters() == [0]

    def test_anonymous_and_unknown_requesters_unbudgeted(self):
        ledger = BudgetLedger({0: 0.0})
        assert ledger.allows(_task(requester=None))
        assert ledger.allows(_task(requester=99))
        ledger.charge(_task(requester=None))
        ledger.charge(_task(requester=99))
        assert ledger.summary()["charges"] == 0.0

    def test_remaining_clamped_at_zero(self):
        ledger = BudgetLedger({0: 0.05})
        # Charge-on-completion may overshoot: in-flight assignments are
        # honoured even past the budget.
        ledger.charge(_task(reward=0.08))
        assert ledger.remaining(0) == 0.0
        assert ledger.summary()["total_spent"] == pytest.approx(0.08)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            BudgetLedger({0: -1.0})

    def test_independent_requesters(self):
        ledger = BudgetLedger({0: 0.05, 1: 1.0})
        ledger.charge(_task(requester=0, reward=0.05))
        assert not ledger.allows(_task(requester=0))
        assert ledger.allows(_task(requester=1))
        assert ledger.exhausted_requesters() == [0]

    def test_summary_shape(self):
        ledger = BudgetLedger({0: 0.5, 1: 0.5})
        ledger.charge(_task(requester=1, reward=0.1))
        summary = ledger.summary()
        assert summary == {
            "requesters": 2.0,
            "total_budget": 1.0,
            "total_spent": 0.1,
            "charges": 1.0,
            "exhausted_requesters": 0.0,
        }
