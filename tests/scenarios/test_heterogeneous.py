"""Unit tests for specialist worker populations."""

import pytest

from repro.model.task import TaskCategory
from repro.model.worker import WorkerBehavior, WorkerProfile
from repro.scenarios.heterogeneous import SpecialistConfig, specialize_population


def _population(n, quality=0.6):
    return [
        (
            WorkerProfile(worker_id=i),
            WorkerBehavior(min_time=1.0, max_time=5.0, quality=quality),
        )
        for i in range(n)
    ]


class TestSpecialistConfig:
    def test_defaults_valid(self):
        config = SpecialistConfig()
        assert len(config.categories) == 3

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            SpecialistConfig(
                categories=(TaskCategory.PRICE_CHECK, TaskCategory.PRICE_CHECK)
            )

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            SpecialistConfig(categories=())

    def test_negative_boost_rejected(self):
        with pytest.raises(ValueError):
            SpecialistConfig(specialty_boost=-0.1)


class TestSpecializePopulation:
    def test_round_robin_covers_every_category(self):
        config = SpecialistConfig()
        specialized = specialize_population(_population(6), config)
        for index, (_, behavior) in enumerate(specialized):
            specialty = config.categories[index % 3]
            skills = behavior.quality_by_category
            assert skills[specialty] == pytest.approx(0.6 + 0.25)
            for category in config.categories:
                if category is not specialty:
                    assert skills[category] == pytest.approx(0.6 - 0.30)

    def test_skills_clamped_to_unit_interval(self):
        config = SpecialistConfig(specialty_boost=0.9, offcat_penalty=0.9)
        specialized = specialize_population(_population(3, quality=0.5), config)
        for _, behavior in specialized:
            for value in behavior.quality_by_category.values():
                assert 0.0 <= value <= 1.0

    def test_original_behavior_not_mutated(self):
        population = _population(2)
        specialize_population(population, SpecialistConfig())
        for _, behavior in population:
            assert behavior.quality_by_category is None

    def test_quality_for_routes_through_skills(self):
        config = SpecialistConfig()
        (_, behavior), *_ = specialize_population(_population(1), config)
        specialty = config.categories[0]
        assert behavior.quality_for(specialty) == pytest.approx(0.85)
        # Categories outside the scenario list fall back to the scalar.
        assert behavior.quality_for(TaskCategory.GENERIC) == pytest.approx(0.6)

    def test_no_rng_consumed(self):
        # Determinism by construction: same population in, same skills out.
        a = specialize_population(_population(5), SpecialistConfig())
        b = specialize_population(_population(5), SpecialistConfig())
        for (_, ba), (_, bb) in zip(a, b):
            assert ba.quality_by_category == bb.quality_by_category
