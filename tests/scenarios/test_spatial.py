"""Unit tests for the hot-region spatial sampler."""

import numpy as np
import pytest

from repro.scenarios.spatial import SpatialConfig, SpatialSampler


class TestSpatialConfig:
    def test_hot_cell_is_top_right_corner(self):
        config = SpatialConfig()
        hot = config.hot_cell
        assert hot.lat_max == config.lat_max
        assert hot.lon_max == config.lon_max
        assert hot.lat_min == pytest.approx(
            config.lat_max - 0.25 * (config.lat_max - config.lat_min)
        )

    def test_grid_matches_geometry(self):
        grid = SpatialConfig(rows=2, cols=3).make_grid()
        assert len(grid) == 6
        assert grid.lat_min == 38.0 and grid.lon_max == 23.8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lat_min": 1.0, "lat_max": 1.0},
            {"rows": 0},
            {"hot_fraction": 1.5},
            {"hot_size": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpatialConfig(**kwargs)


class TestSpatialSampler:
    def test_skew_concentrates_tasks_in_hot_cell(self):
        config = SpatialConfig(hot_fraction=0.8)
        sampler = SpatialSampler(config, np.random.default_rng(3))
        hot = config.hot_cell
        hits = sum(
            hot.contains(*sampler.task_location()) for _ in range(500)
        )
        # 80% targeted + the uniform tail that lands there by chance.
        assert hits > 350

    def test_no_skew_when_fraction_zero(self):
        config = SpatialConfig(hot_fraction=0.0, hot_size=0.1)
        sampler = SpatialSampler(config, np.random.default_rng(3))
        hot = config.hot_cell
        hits = sum(
            hot.contains(*sampler.task_location()) for _ in range(500)
        )
        assert hits < 30  # ~1% of the box area

    def test_all_draws_inside_bbox(self):
        config = SpatialConfig()
        sampler = SpatialSampler(config, np.random.default_rng(5))
        for _ in range(200):
            for lat, lon in (sampler.task_location(), sampler.worker_location()):
                assert config.lat_min <= lat <= config.lat_max
                assert config.lon_min <= lon <= config.lon_max

    def test_draw_count_is_geometry_independent(self):
        # Hot and cold branches must consume the same number of stream
        # draws, so reshaping the geometry never desynchronizes seeded runs.
        a = SpatialSampler(
            SpatialConfig(hot_fraction=1.0), np.random.default_rng(11)
        )
        b = SpatialSampler(
            SpatialConfig(hot_fraction=0.0), np.random.default_rng(11)
        )
        for _ in range(50):
            a.task_location()
            b.task_location()
        # After identical draw counts, the next worker draw agrees exactly.
        assert a.worker_location() == b.worker_location()
