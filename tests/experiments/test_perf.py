"""Smoke tests for the perf-regression harness (quick sizes only)."""

from __future__ import annotations

import json

from repro.experiments.cli import COMMANDS
from repro.experiments.perf import (
    BenchResult,
    check_endtoend_regression,
    format_report,
    run_bench,
    run_matching_benchmarks,
    write_bench_file,
)

SCHEMA_KEYS = {"bench", "params", "wall_seconds", "throughput", "commit"}


class TestMatchingBenchmarks:
    def test_quick_run_schema_and_speedup(self):
        results = run_matching_benchmarks(quick=True)
        assert {r.bench for r in results} == {"react_match", "metropolis_match"}
        for r in results:
            assert set(r.to_dict()) == SCHEMA_KEYS
            assert r.wall_seconds > 0
            assert r.throughput > 0
            if r.params["backend"] == "reference":
                assert "speedup_vs_reference" not in r.params
            else:
                assert r.params["speedup_vs_reference"] > 0

    def test_backends_covered(self):
        from repro.core import kernels

        results = run_matching_benchmarks(quick=True)
        react_backends = {
            r.params["backend"] for r in results if r.bench == "react_match"
        }
        assert react_backends == set(kernels.available_backends())


class TestDriver:
    def test_run_bench_writes_json_files(self, tmp_path):
        # endtoend_parallel=0 skips the sharded variant: the multiprocessing
        # spawn adds ~10 s of pure overhead on a 1-core test runner and the
        # variant's mechanics are covered by tests/dist.
        report = run_bench(quick=True, out_dir=tmp_path, endtoend_parallel=0)
        for name in (
            "BENCH_matching.json",
            "BENCH_platform.json",
            "BENCH_endtoend.json",
        ):
            payload = json.loads((tmp_path / name).read_text())
            assert isinstance(payload, list) and payload
            for record in payload:
                assert set(record) == SCHEMA_KEYS
            assert name in report
        endtoend = json.loads((tmp_path / "BENCH_endtoend.json").read_text())
        assert all(r["bench"] == "endtoend_throughput" for r in endtoend)
        by_policy = {r["params"]["policy"]: r for r in endtoend}
        assert set(by_policy) == {"react", "greedy", "traditional", "all"}
        aggregate = by_policy["all"]
        assert aggregate["params"]["variant"] == "sequential"
        assert aggregate["params"]["completed"] == sum(
            by_policy[p]["params"]["completed"]
            for p in ("react", "greedy", "traditional")
        )
        assert aggregate["throughput"] > 0
        # Quick runs use a non-comparable workload, so they must not carry
        # the committed pre-PR speedup numbers.
        assert "speedup_vs_pre_pr" not in aggregate["params"]
        platform = json.loads((tmp_path / "BENCH_platform.json").read_text())
        assert {r["bench"] for r in platform} == {
            "graph_build_prune",
            "distance_weight",
            "eq3_matrix",
            "eq2_sweep",
            "endtoend_obs_overhead",
            "scalability_parallel",
        }
        parallel = next(
            r for r in platform if r["bench"] == "scalability_parallel"
        )
        # Speedup is hardware-bound (1-core CI cannot show one), so the
        # schema records cpu_count alongside it instead of asserting a ratio.
        assert parallel["params"]["cpu_count"] is not None
        assert parallel["params"]["speedup_vs_serial"] > 0

    def test_format_report_handles_missing_backend(self):
        text = format_report(
            [BenchResult("x", {}, wall_seconds=0.5, throughput=2.0)]
        )
        assert "x" in text

    def test_cli_exposes_bench_command(self):
        assert "bench" in COMMANDS


def _endtoend_record(policy, throughput, variant="sequential"):
    return BenchResult(
        bench="endtoend_throughput",
        params={
            "variant": variant,
            "policy": policy,
            "backend": "python",
            "n_workers": 750,
            "n_tasks": 8371,
        },
        wall_seconds=1.0,
        throughput=throughput,
    )


class TestEndtoendRegressionCheck:
    """The CI gate: fresh sequential rates vs the committed baseline."""

    def _baseline(self, tmp_path, throughput=1000.0):
        path = tmp_path / "BENCH_endtoend.json"
        write_bench_file(path, [_endtoend_record("react", throughput)])
        return path

    def test_within_tolerance_passes(self, tmp_path):
        baseline = self._baseline(tmp_path)
        fresh = [_endtoend_record("react", 850.0)]  # -15% < 20% tolerance
        assert check_endtoend_regression(fresh, baseline, tolerance=0.2) == []

    def test_regression_fails(self, tmp_path):
        baseline = self._baseline(tmp_path)
        fresh = [_endtoend_record("react", 700.0)]  # -30%
        failures = check_endtoend_regression(fresh, baseline, tolerance=0.2)
        assert len(failures) == 1
        assert "react" in failures[0]

    def test_parallel_variant_is_informational(self, tmp_path):
        # Parallel rates depend on the host's core count, not the code, so
        # only sequential records gate — but a baseline with *no* matching
        # sequential record must fail rather than pass vacuously.
        baseline = self._baseline(tmp_path)
        sequential_ok = _endtoend_record("react", 990.0)
        parallel_slow = _endtoend_record("all", 10.0, variant="parallel")
        assert (
            check_endtoend_regression(
                [sequential_ok, parallel_slow], baseline, tolerance=0.2
            )
            == []
        )
        assert check_endtoend_regression([parallel_slow], baseline) != []

    def test_workload_mismatch_fails_loudly(self, tmp_path):
        baseline = self._baseline(tmp_path)
        fresh = [_endtoend_record("react", 5000.0)]
        fresh[0].params["n_workers"] = 60  # a --quick run
        failures = check_endtoend_regression(fresh, baseline)
        assert len(failures) == 1
        assert "comparable" in failures[0]
