"""Smoke tests for the perf-regression harness (quick sizes only)."""

from __future__ import annotations

import json

from repro.experiments.cli import COMMANDS
from repro.experiments.perf import (
    BenchResult,
    format_report,
    run_bench,
    run_matching_benchmarks,
)

SCHEMA_KEYS = {"bench", "params", "wall_seconds", "throughput", "commit"}


class TestMatchingBenchmarks:
    def test_quick_run_schema_and_speedup(self):
        results = run_matching_benchmarks(quick=True)
        assert {r.bench for r in results} == {"react_match", "metropolis_match"}
        for r in results:
            assert set(r.to_dict()) == SCHEMA_KEYS
            assert r.wall_seconds > 0
            assert r.throughput > 0
            if r.params["backend"] == "reference":
                assert "speedup_vs_reference" not in r.params
            else:
                assert r.params["speedup_vs_reference"] > 0

    def test_backends_covered(self):
        from repro.core import kernels

        results = run_matching_benchmarks(quick=True)
        react_backends = {
            r.params["backend"] for r in results if r.bench == "react_match"
        }
        assert react_backends == set(kernels.available_backends())


class TestDriver:
    def test_run_bench_writes_json_files(self, tmp_path):
        report = run_bench(quick=True, out_dir=tmp_path)
        for name in ("BENCH_matching.json", "BENCH_platform.json"):
            payload = json.loads((tmp_path / name).read_text())
            assert isinstance(payload, list) and payload
            for record in payload:
                assert set(record) == SCHEMA_KEYS
            assert name in report
        platform = json.loads((tmp_path / "BENCH_platform.json").read_text())
        assert {r["bench"] for r in platform} == {
            "graph_build_prune",
            "eq3_matrix",
            "eq2_sweep",
            "endtoend_obs_overhead",
            "scalability_parallel",
        }
        parallel = next(
            r for r in platform if r["bench"] == "scalability_parallel"
        )
        # Speedup is hardware-bound (1-core CI cannot show one), so the
        # schema records cpu_count alongside it instead of asserting a ratio.
        assert parallel["params"]["cpu_count"] is not None
        assert parallel["params"]["speedup_vs_serial"] > 0

    def test_format_report_handles_missing_backend(self):
        text = format_report(
            [BenchResult("x", {}, wall_seconds=0.5, throughput=2.0)]
        )
        assert "x" in text

    def test_cli_exposes_bench_command(self):
        assert "bench" in COMMANDS
