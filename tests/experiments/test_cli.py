"""Tests for the figure-regeneration CLI."""

import pytest

from repro.experiments.cli import COMMANDS, main


class TestDispatch:
    def test_all_figures_registered(self):
        expected = {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "case-study", "ablations", "voting", "endtoend", "chaos", "bench",
            "loadtest", "scenario",
        }
        assert set(COMMANDS) == expected

    def test_trace_flag_rejected_for_untraceable_command(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--quick", "--trace-out", "/tmp/x"])

    def test_case_study_quick(self, capsys):
        assert main(["case-study", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CrowdFlower" in out
        assert "trust > 0.5" in out

    def test_fig7_quick(self, capsys):
        assert main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "react" in out and "traditional" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scenario_quick(self, capsys):
        assert main(["scenario", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Scenario pack" in out
        assert "total splits performed:" in out
        # The quick config must actually exercise the overload remedy.
        splits = int(out.split("total splits performed: ")[1].split()[0])
        assert splits >= 1


class TestExport:
    def test_out_flag_writes_series(self, tmp_path, capsys):
        assert main(["fig3", "--quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# wrote" in out
        assert (tmp_path / "fig3_4.csv").exists()
