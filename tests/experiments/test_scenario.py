"""Tests for the scenario experiment driver (budgets x geography x skills)."""

import dataclasses

import pytest

from repro.dist import run_scenario_sharded
from repro.experiments.scenario import (
    ScenarioConfig,
    report_scenario,
    run_scenario,
    run_scenario_comparison,
)
from repro.platform.policies import greedy_policy, react_policy
from repro.scenarios.baselines import scenario_policies
from repro.scenarios.spatial import SpatialConfig

#: Small but still saturated: enough hot-cell arrivals to trip a split and
#: budgets tight enough to shed (empirically verified; see the CLI's quick
#: config, which is this shape scaled up).
SMALL = ScenarioConfig(
    n_tasks=120, n_workers=40, horizon=120.0, requester_budget=0.3
)


class TestScenarioConfig:
    def test_defaults_valid(self):
        ScenarioConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_tasks": 0},
            {"arrival_rate": 0.0},
            {"horizon": -1.0},
            {"deadline_low": 0.0},
            {"deadline_low": 120.0, "deadline_high": 60.0},
            {"n_requesters": 0},
            {"requester_budget": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)


class TestRunScenario:
    def test_skewed_arrivals_force_split_and_migration(self):
        # The ISSUE's acceptance criterion: a skewed-arrival scenario run
        # performs at least one region split and migrates queued tasks
        # cross-region.
        result = run_scenario(react_policy(weight_function_name="hybrid"), SMALL)
        assert result.splits_performed >= 1
        assert result.tasks_migrated >= 1
        assert result.regions_final > SMALL.spatial.rows * SMALL.spatial.cols

    def test_budget_shedding_and_conservation(self):
        result = run_scenario(greedy_policy(weight_function_name="hybrid"), SMALL)
        assert result.shed_by_budget >= 1
        summary = result.summary
        finished = summary["completed"] + summary.get("expired_unassigned", 0)
        assert finished <= summary["received"]
        assert result.budget["total_spent"] > 0
        assert result.budget["exhausted_requesters"] >= 1

    def test_no_split_when_remedy_disabled(self):
        config = dataclasses.replace(SMALL, overload_queue_limit=None)
        result = run_scenario(react_policy(weight_function_name="hybrid"), config)
        assert result.splits_performed == 0
        assert result.regions_final == config.spatial.rows * config.spatial.cols

    def test_deterministic(self):
        policy = react_policy(weight_function_name="hybrid")
        assert run_scenario(policy, SMALL) == run_scenario(policy, SMALL)

    def test_custom_geometry(self):
        config = dataclasses.replace(
            SMALL, spatial=SpatialConfig(rows=2, cols=2, hot_fraction=0.9)
        )
        result = run_scenario(react_policy(weight_function_name="hybrid"), config)
        assert result.regions_final >= 4


class TestComparison:
    def test_all_five_policies_run(self):
        results = run_scenario_comparison(SMALL)
        assert list(results) == [
            "react", "metropolis", "greedy", "greedy_spatial", "ratio"
        ]
        for result in results.values():
            assert result.splits_performed >= 1

    def test_duplicate_policy_rejected(self):
        policy = react_policy(weight_function_name="hybrid")
        with pytest.raises(ValueError, match="duplicate"):
            run_scenario_comparison(SMALL, policies=[policy, policy])

    def test_report_contains_greppable_footer(self):
        results = run_scenario_comparison(
            SMALL, policies=[react_policy(weight_function_name="hybrid")]
        )
        report = report_scenario(results)
        assert "total splits performed:" in report
        assert "react" in report


class TestSharded:
    def test_parallel_2_equals_sequential(self):
        policies = scenario_policies()[:3]
        sequential = run_scenario_comparison(SMALL, policies=policies)
        sharded = run_scenario_sharded(SMALL, policies=policies, parallel=2)
        assert sharded.results == sequential

    def test_resume_from_checkpoint(self, tmp_path):
        policies = scenario_policies()[:2]
        fresh = run_scenario_sharded(
            SMALL, policies=policies, parallel=1, checkpoint_dir=tmp_path
        )
        resumed = run_scenario_sharded(
            SMALL, policies=policies, parallel=1, checkpoint_dir=tmp_path
        )
        assert resumed.resumed == len(policies)
        assert resumed.computed == 0
        assert resumed.results == fresh.results

    def test_duplicate_policy_rejected(self):
        policy = react_policy(weight_function_name="hybrid")
        with pytest.raises(ValueError, match="duplicate"):
            run_scenario_sharded(SMALL, policies=[policy, policy])
