"""Tests for the Figs. 9-10 scalability driver (scaled-down sweep)."""

import pytest

from repro.experiments.config import ScalabilityConfig
from repro.experiments.scalability import run_scalability

SMALL_SWEEP = ScalabilityConfig(
    worker_sizes=(30, 80),
    rates=(0.4, 1.0),
    duration=200.0,
    drain_time=300.0,
    seed=21,
)


@pytest.fixture(scope="module")
def result():
    return run_scalability(SMALL_SWEEP)


class TestStructure:
    def test_all_points_present(self, result):
        assert len(result.points) == 2 * 3  # 2 sizes x 3 techniques
        assert set(result.policies()) == {"react", "greedy", "traditional"}

    def test_series_selection(self, result):
        react = result.series("react")
        assert [p.n_workers for p in react] == [30, 80]
        assert [p.n_tasks for p in react] == [80, 200]

    def test_fractions_in_unit_interval(self, result):
        for p in result.points:
            assert 0.0 <= p.on_time_fraction <= 1.0
            assert 0.0 <= p.positive_feedback_fraction <= 1.0

    def test_feedback_never_exceeds_on_time(self, result):
        """Positive feedback requires meeting the deadline (Fig. 10 <= Fig. 9)."""
        for p in result.points:
            assert p.positive_feedback_fraction <= p.on_time_fraction + 1e-9


class TestPaperShapes:
    def test_react_beats_traditional_at_every_size(self, result):
        for react, trad in zip(result.series("react"), result.series("traditional")):
            assert react.on_time_fraction > trad.on_time_fraction

    def test_react_stable_across_sizes(self, result):
        """Fig. 9: 'REACT seems to be a little influenced as the graph size
        increases'."""
        fractions = [p.on_time_fraction for p in result.series("react")]
        assert max(fractions) - min(fractions) < 0.15
