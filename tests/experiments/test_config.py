"""Unit tests for experiment configurations."""

import pytest

from repro.experiments.config import (
    AblationConfig,
    EndToEndConfig,
    MatchingSweepConfig,
    ScalabilityConfig,
)


class TestMatchingSweepConfig:
    def test_paper_defaults(self):
        config = MatchingSweepConfig()
        assert config.n_workers == 1000
        assert max(config.task_counts) == 1000
        assert config.cycles_settings == (1000, 3000)

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchingSweepConfig(n_workers=0)
        with pytest.raises(ValueError):
            MatchingSweepConfig(task_counts=())


class TestEndToEndConfig:
    def test_paper_defaults(self):
        config = EndToEndConfig()
        assert config.n_workers == 750
        assert config.arrival_rate == 9.375
        assert config.n_tasks == 8371
        assert config.deadline_low == 60.0
        assert config.deadline_high == 120.0

    def test_horizon(self):
        config = EndToEndConfig(n_tasks=100, arrival_rate=10.0, drain_time=50.0)
        assert config.horizon == pytest.approx(60.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_workers=0),
            dict(arrival_rate=0.0),
            dict(arrival_process="weird"),
            dict(cost_model="quantum"),
            dict(drain_time=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EndToEndConfig(**kwargs)


class TestScalabilityConfig:
    def test_paper_sweep(self):
        config = ScalabilityConfig()
        assert config.worker_sizes == (100, 250, 500, 750, 1000)
        assert config.rates == (1.5, 3.125, 6.25, 9.375, 12.5)

    def test_points_scale_tasks_with_rate(self):
        config = ScalabilityConfig(
            worker_sizes=(10, 20), rates=(1.0, 2.0), duration=100.0
        )
        assert config.points() == [(10, 1.0, 100), (20, 2.0, 200)]

    def test_endtoend_config_derivation(self):
        config = ScalabilityConfig()
        derived = config.endtoend_config(100, 1.5, 1340)
        assert derived.n_workers == 100
        assert derived.arrival_rate == 1.5
        assert derived.seed == config.seed

    def test_misaligned_sweep_rejected(self):
        with pytest.raises(ValueError, match="align"):
            ScalabilityConfig(worker_sizes=(1, 2), rates=(1.0,))


class TestAblationConfig:
    def test_sweeps_non_empty(self):
        config = AblationConfig()
        assert config.cycles_sweep
        assert config.threshold_sweep
        assert config.z_sweep
        assert config.k_sweep
