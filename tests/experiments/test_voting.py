"""Tests for the replication/majority-voting comparison."""

import pytest

from repro.experiments.voting import (
    VotingConfig,
    VotingPoint,
    report_voting,
    run_voting_comparison,
)

SMALL = VotingConfig(
    n_workers=80, arrival_rate=0.4, n_tasks=500, replication_levels=(1, 3), seed=3
)


@pytest.fixture(scope="module")
def result():
    return run_voting_comparison(SMALL)


class TestConfig:
    def test_even_replication_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            VotingConfig(replication_levels=(2,))

    def test_validation(self):
        with pytest.raises(ValueError):
            VotingConfig(n_workers=0)
        with pytest.raises(ValueError):
            VotingConfig(replication_levels=())


class TestComparison:
    def test_point_labels(self, result):
        labels = [p.label for p in result.points]
        assert labels == ["react", "vote-1", "vote-3"]

    def test_logical_task_counts(self, result):
        for p in result.points:
            assert p.logical_tasks == 500

    def test_rewards_scale_with_replication(self, result):
        by = result.by_label()
        assert by["react"].rewards_per_task == 1.0
        assert by["vote-3"].rewards_per_task == 3.0

    def test_executions_scale_with_replication(self, result):
        by = result.by_label()
        assert by["vote-3"].executions_per_task > by["vote-1"].executions_per_task

    def test_voting_improves_blind_platform(self, result):
        """Majority voting does help the unprofiled platform (R=3 > R=1)."""
        by = result.by_label()
        assert by["vote-3"].success_fraction > by["vote-1"].success_fraction

    def test_react_beats_unprofiled_single_assignment(self, result):
        """The §VI claim's foundation: profiling beats blind assignment at
        equal cost."""
        by = result.by_label()
        assert by["react"].success_fraction > by["vote-1"].success_fraction

    def test_success_fractions_bounded(self, result):
        for p in result.points:
            assert 0.0 <= p.success_fraction <= 1.0


class TestReport:
    def test_report_renders(self, result):
        text = report_voting(result)
        assert "majority voting" in text
        assert "react" in text and "vote-3" in text
        assert "rewards/task" in text
