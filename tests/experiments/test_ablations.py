"""Tests for the ablation drivers."""

import pytest

from repro.experiments.ablations import (
    ablate_cycles,
    ablate_k_constant,
    ablate_threshold,
    ablate_training_z,
)
from repro.experiments.config import AblationConfig

FAST = AblationConfig(
    cycles_sweep=(50, 500, 5000),
    threshold_sweep=(0.0, 0.1),
    z_sweep=(0, 3),
    k_sweep=(0.01, 1.0),
    seed=2,
)


class TestCyclesAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablate_cycles(FAST, n_workers=60, n_tasks=60)

    def test_includes_adaptive_point(self, result):
        assert any(p.adaptive for p in result.points)

    def test_output_improves_with_cycles(self, result):
        fixed = [p for p in result.points if not p.adaptive]
        assert fixed[-1].output_weight > fixed[0].output_weight

    def test_optimality_bounded(self, result):
        for p in result.points:
            assert 0.0 <= p.optimality <= 1.0 + 1e-9

    def test_adaptive_uses_edge_scaled_budget(self, result):
        adaptive = next(p for p in result.points if p.adaptive)
        assert adaptive.cycles >= 2 * 60 * 60  # adaptive_factor * E


class TestKAblation:
    def test_low_temperature_beats_high(self):
        # The temperature effect is an equilibrium property: it only shows
        # once the walk has converged, so give it a generous cycle budget.
        result = ablate_k_constant(FAST, n_workers=60, n_tasks=60, cycles=10000)
        by_k = {p.k_constant: p.output_weight for p in result.points}
        assert by_k[0.01] > by_k[1.0]


class TestEndToEndAblations:
    def test_threshold_sweep_points(self):
        result = ablate_threshold(FAST)
        assert [p.value for p in result.points] == [0.0, 0.1]
        # threshold 0 disables Eq. 2 pulls entirely
        assert result.points[0].reassignments <= result.points[1].reassignments

    def test_z_sweep_points(self):
        result = ablate_training_z(FAST)
        assert [p.value for p in result.points] == [0.0, 3.0]
        for p in result.points:
            assert 0.0 <= p.on_time_fraction <= 1.0
