"""Golden-file tests of the retainer report and export formats.

The fixtures are hand-constructed results (no simulation), so the goldens
pin the *formatting* contract — column layout, rounding, JSON shape —
independently of any engine behaviour.  Regenerate after an intentional
format change with:

    PYTHONPATH=src python tests/experiments/test_retainer_golden.py
"""

import csv
import json
from pathlib import Path

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import EndToEndResult, RetainerRunStats
from repro.experiments.export import export_retainer
from repro.experiments.reporting import report_retainer
from repro.stats.metrics import MetricsCollector

GOLDEN_DIR = Path(__file__).parent / "goldens"

_CONFIG = EndToEndConfig(
    n_workers=120,
    arrival_rate=2.0,
    n_tasks=400,
    drain_time=200,
    seed=42,
    arrival_process="poisson",
    worker_arrival_rate=0.5,
    worker_patience=30.0,
)


def _result(name, completed, on_time_fraction, p95, avg, retainer):
    return EndToEndResult(
        policy_name=name,
        config=_CONFIG,
        summary={
            "received": 400.0,
            "completed": float(completed),
            "on_time_fraction": on_time_fraction,
        },
        deadline_series=[(100, 80), (400, int(400 * on_time_fraction))],
        feedback_series=[(100, 70), (400, 300)],
        avg_worker_time=11.5,
        avg_total_time=avg,
        withdrawals=3,
        batches=40,
        max_batch_tasks=25,
        metrics=MetricsCollector(),
        p95_total_time=p95,
        retainer=retainer,
    )


def fixture_results():
    """A deterministic, hand-written comparison pair."""
    on_demand = RetainerRunStats(
        pool_capacity=0,
        workers_arrived=120,
        workers_retained=0,
        walk_ins=120,
        patience_departures=120,
        releases=0,
        repooled=0,
        wage_cost=0.0,
        assignment_cost=9.25,
        total_cost=9.25,
        cost_per_completed=0.05,
    )
    retained = RetainerRunStats(
        pool_capacity=20,
        workers_arrived=120,
        workers_retained=20,
        walk_ins=100,
        patience_departures=100,
        releases=121,
        repooled=121,
        wage_cost=35.5770,
        assignment_cost=11.05,
        total_cost=46.6270,
        cost_per_completed=0.21098,
    )
    return {
        "react": _result("react", 185, 0.4575, 86.9795, 50.1234, on_demand),
        "react_retainer": _result(
            "react_retainer", 221, 0.5525, 83.0807, 47.9876, retained
        ),
    }


class TestReportGolden:
    def test_report_matches_golden(self):
        text = report_retainer(fixture_results())
        golden = (GOLDEN_DIR / "retainer_report.txt").read_text()
        assert text == golden


class TestExportGolden:
    def test_csv_matches_golden(self, tmp_path):
        export_retainer(fixture_results(), tmp_path)
        got = (tmp_path / "retainer_comparison.csv").read_text()
        golden = (GOLDEN_DIR / "retainer_comparison.csv").read_text()
        assert got == golden

    def test_json_matches_golden(self, tmp_path):
        export_retainer(fixture_results(), tmp_path)
        got = json.loads((tmp_path / "retainer_summary.json").read_text())
        golden = json.loads((GOLDEN_DIR / "retainer_summary.json").read_text())
        assert got == golden

    def test_csv_round_trips(self, tmp_path):
        # Sanity beyond byte-equality: the CSV is parseable and faithful.
        export_retainer(fixture_results(), tmp_path)
        with (tmp_path / "retainer_comparison.csv").open() as fh:
            rows = {r["policy"]: r for r in csv.DictReader(fh)}
        assert set(rows) == {"react", "react_retainer"}
        assert int(rows["react_retainer"]["pool_capacity"]) == 20
        assert float(rows["react_retainer"]["wage_cost"]) == 35.577
        assert rows["react"]["wage_cost"] == "0.0000"


def regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    results = fixture_results()
    (GOLDEN_DIR / "retainer_report.txt").write_text(report_retainer(results))
    for path in export_retainer(results, GOLDEN_DIR):
        print(f"wrote {path}")
    print(f"wrote {GOLDEN_DIR / 'retainer_report.txt'}")


if __name__ == "__main__":
    regenerate()
