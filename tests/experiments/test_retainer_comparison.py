"""Marketplace-mode retainer comparison (docs/RETAINER.md).

The headline behavioural claim: under the same seeded marketplace —
identical worker-arrival and task-arrival traces — REACT with a retainer
pool beats plain on-demand REACT on the p95 total-task-latency the
paper's real-time constraints care about, at a bounded wage premium.
"""

import pytest

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import (
    retainer_policies,
    run_endtoend,
    run_retainer_comparison,
)
from repro.obs.runtime import Observability
from repro.platform.policies import RetainerSpec, react_retainer_policy

MARKETPLACE = EndToEndConfig(
    n_workers=120,
    arrival_rate=2.0,
    n_tasks=400,
    drain_time=200,
    seed=42,
    arrival_process="poisson",
    worker_arrival_rate=0.5,
    worker_patience=30.0,
)


@pytest.fixture(scope="module")
def comparison():
    return run_retainer_comparison(MARKETPLACE)


class TestComparison:
    def test_policy_pair(self, comparison):
        assert set(comparison) == {"react", "react_retainer"}

    def test_retainer_wins_p95_latency(self, comparison):
        """The acceptance headline: retained standby capacity cuts the tail."""
        react = comparison["react"]
        retained = comparison["react_retainer"]
        assert retained.p95_total_time is not None
        assert react.p95_total_time is not None
        assert retained.p95_total_time < react.p95_total_time

    def test_retainer_completes_no_fewer_tasks(self, comparison):
        assert (
            comparison["react_retainer"].summary["completed"]
            >= comparison["react"].summary["completed"]
        )

    def test_identical_supply_trace(self, comparison):
        # Same seed, same marketplace: both policies see the same arrivals.
        a = comparison["react"].retainer
        b = comparison["react_retainer"].retainer
        assert a is not None and b is not None
        assert a.workers_arrived == b.workers_arrived

    def test_on_demand_baseline_pays_no_wages(self, comparison):
        stats = comparison["react"].retainer
        assert stats.pool_capacity == 0
        assert stats.workers_retained == 0
        assert stats.wage_cost == 0.0
        assert stats.total_cost == pytest.approx(stats.assignment_cost)

    def test_retainer_accounting_balances(self, comparison):
        stats = comparison["react_retainer"].retainer
        assert stats.pool_capacity == RetainerSpec().size
        assert stats.workers_retained == RetainerSpec().size
        assert stats.wage_cost > 0.0
        assert stats.total_cost == pytest.approx(
            stats.wage_cost + stats.assignment_cost
        )
        completed = comparison["react_retainer"].summary["completed"]
        assert stats.cost_per_completed == pytest.approx(
            stats.total_cost / completed
        )
        # Flat payment per completed task.
        assert stats.assignment_cost == pytest.approx(
            RetainerSpec().task_payment * completed
        )

    def test_retainer_recycles_workers(self, comparison):
        stats = comparison["react_retainer"].retainer
        assert stats.releases > 0
        assert stats.repooled > 0

    def test_deterministic_under_seed(self):
        a = run_retainer_comparison(MARKETPLACE)
        b = run_retainer_comparison(MARKETPLACE)
        for name in a:
            assert a[name].summary == b[name].summary
            assert a[name].p95_total_time == b[name].p95_total_time


class TestObservability:
    def test_pool_instruments_populated(self):
        obs_by_policy = {}

        def factory(name):
            obs_by_policy[name] = Observability()
            return obs_by_policy[name]

        run_retainer_comparison(MARKETPLACE, observability_factory=factory)
        registry = obs_by_policy["react_retainer"].registry
        assert registry.value("retainer_releases_total") > 0
        assert registry.value("retainer_wage_cost_total") > 0
        assert registry.get("retainer_release_latency_seconds") is not None


class TestModeValidation:
    def test_retainer_policy_requires_marketplace(self):
        closed = EndToEndConfig(
            n_workers=30, arrival_rate=0.5, n_tasks=50, drain_time=100, seed=1
        )
        with pytest.raises(ValueError, match="marketplace"):
            run_endtoend(react_retainer_policy(), closed)

    def test_comparison_requires_marketplace(self):
        closed = EndToEndConfig(
            n_workers=30, arrival_rate=0.5, n_tasks=50, drain_time=100, seed=1
        )
        with pytest.raises(ValueError, match="marketplace"):
            run_retainer_comparison(closed)

    def test_marketplace_excludes_churn(self):
        with pytest.raises(ValueError, match="churn"):
            EndToEndConfig(
                n_workers=30,
                arrival_rate=0.5,
                n_tasks=50,
                drain_time=100,
                worker_arrival_rate=0.5,
                churn_mean_session=60.0,
            )

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="worker_arrival_rate"):
            EndToEndConfig(
                n_workers=30,
                arrival_rate=0.5,
                n_tasks=50,
                drain_time=100,
                worker_arrival_rate=0.0,
            )
        with pytest.raises(ValueError, match="worker_patience"):
            EndToEndConfig(
                n_workers=30,
                arrival_rate=0.5,
                n_tasks=50,
                drain_time=100,
                worker_arrival_rate=0.5,
                worker_patience=-1.0,
            )

    def test_retainer_spec_validation(self):
        with pytest.raises(ValueError, match="size"):
            RetainerSpec(size=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetainerSpec(wage_per_second=-0.01)

    def test_policy_factory_defaults(self):
        policy = react_retainer_policy()
        assert policy.name == "react_retainer"
        assert policy.retainer is not None
        assert policy.retainer.size == RetainerSpec().size
        names = [p.name for p in retainer_policies()]
        assert names == ["react", "react_retainer"]
