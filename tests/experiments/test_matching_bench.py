"""Tests for the Figs. 3-4 matching-sweep driver."""

import pytest

from repro.experiments.config import MatchingSweepConfig
from repro.experiments.matching_bench import run_matching_sweep


@pytest.fixture(scope="module")
def sweep():
    """A scaled-down sweep that still exhibits the paper's shapes."""
    return run_matching_sweep(
        MatchingSweepConfig(
            n_workers=120,
            task_counts=(10, 60, 120),
            cycles_settings=(300, 900),
            include_hungarian=True,
            seed=5,
        )
    )


class TestStructure:
    def test_all_points_present(self, sweep):
        # greedy + 2x react + 2x metropolis + hungarian = 6 per task count
        assert len(sweep.points) == 6 * 3

    def test_series_selection(self, sweep):
        react = sweep.series("react", cycles=300)
        assert len(react) == 3
        assert [p.n_tasks for p in react] == [10, 60, 120]

    def test_matchings_valid_sizes(self, sweep):
        for p in sweep.points:
            assert 0 <= p.matched <= min(120, p.n_tasks)
            assert p.output_weight <= p.matched  # weights in [0,1]


class TestPaperShapes:
    def test_greedy_near_optimal_output(self, sweep):
        """Fig. 4: greedy ~ optimal on full graphs."""
        for n_tasks in (10, 60, 120):
            greedy = next(p for p in sweep.series("greedy") if p.n_tasks == n_tasks)
            optimal = next(p for p in sweep.series("hungarian") if p.n_tasks == n_tasks)
            assert greedy.output_weight >= 0.93 * optimal.output_weight

    def test_react_beats_metropolis_at_equal_cycles(self, sweep):
        for cycles in (300, 900):
            for n_tasks in (60, 120):
                react = next(
                    p for p in sweep.series("react", cycles) if p.n_tasks == n_tasks
                )
                metro = next(
                    p for p in sweep.series("metropolis", cycles) if p.n_tasks == n_tasks
                )
                assert react.output_weight > metro.output_weight

    def test_react_output_grows_with_cycles(self, sweep):
        low = next(p for p in sweep.series("react", 300) if p.n_tasks == 120)
        high = next(p for p in sweep.series("react", 900) if p.n_tasks == 120)
        assert high.output_weight > low.output_weight

    def test_model_seconds_reproduce_fig3_scaling(self, sweep):
        """Greedy model time grows faster than REACT's with task count."""
        greedy = sweep.series("greedy")
        react = sweep.series("react", 300)
        g_ratio = greedy[-1].model_seconds / greedy[0].model_seconds
        r_ratio = react[-1].model_seconds / react[0].model_seconds
        assert g_ratio > r_ratio

    def test_wall_clock_positive(self, sweep):
        assert all(p.wall_seconds > 0 for p in sweep.points)
