"""Tests for the Figs. 5-8 end-to-end driver (scaled-down workloads)."""

import pytest

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import default_policies, run_comparison, run_endtoend
from repro.platform.policies import react_policy, traditional_policy

SMALL = EndToEndConfig(
    n_workers=60, arrival_rate=0.75, n_tasks=300, drain_time=400, seed=9
)


@pytest.fixture(scope="module")
def comparison():
    return run_comparison(SMALL)


class TestSingleRun:
    def test_accounting_balances(self):
        result = run_endtoend(react_policy(), SMALL)
        summary = result.summary
        assert summary["received"] == 300
        finished = summary["completed"] + summary["expired_unassigned"]
        in_flight = summary["pending_unassigned"] + summary["pending_assigned"]
        assert finished + in_flight == 300

    def test_series_monotone(self):
        result = run_endtoend(react_policy(), SMALL)
        received = [x for x, _ in result.deadline_series]
        on_time = [y for _, y in result.deadline_series]
        assert received == sorted(received)
        assert on_time == sorted(on_time)

    def test_deterministic_under_seed(self):
        a = run_endtoend(react_policy(), SMALL)
        b = run_endtoend(react_policy(), SMALL)
        assert a.summary == b.summary
        assert a.deadline_series == b.deadline_series


class TestComparison:
    def test_three_default_policies(self, comparison):
        assert set(comparison) == {"react", "greedy", "traditional"}

    def test_react_beats_traditional_on_deadlines(self, comparison):
        """Fig. 5's core claim at small scale."""
        react = comparison["react"].summary["on_time_fraction"]
        trad = comparison["traditional"].summary["on_time_fraction"]
        assert react > trad

    def test_react_beats_traditional_on_feedback(self, comparison):
        """Fig. 6."""
        assert (
            comparison["react"].summary["positive_feedbacks"]
            > comparison["traditional"].summary["positive_feedbacks"]
        )

    def test_react_shortest_worker_time(self, comparison):
        """Fig. 7: REACT reacts to delays; traditional does not."""
        assert comparison["react"].avg_worker_time < comparison["traditional"].avg_worker_time

    def test_react_shortest_total_time(self, comparison):
        """Fig. 8."""
        assert comparison["react"].avg_total_time < comparison["traditional"].avg_total_time

    def test_traditional_never_reassigns(self, comparison):
        assert comparison["traditional"].summary["reassignments"] == 0
        assert comparison["traditional"].withdrawals == 0

    def test_react_uses_reassignment(self, comparison):
        assert comparison["react"].summary["reassignments"] > 0

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_comparison(SMALL, [react_policy(), react_policy()])

    def test_custom_policy_list(self):
        results = run_comparison(SMALL, [traditional_policy()])
        assert set(results) == {"traditional"}


class TestCostModelToggle:
    def test_zero_cost_model_runs(self):
        config = EndToEndConfig(
            n_workers=40, arrival_rate=0.5, n_tasks=60, drain_time=300,
            cost_model="zero",
        )
        result = run_endtoend(react_policy(), config)
        assert result.summary["matcher_simulated_seconds"] == 0.0

    def test_poisson_arrivals_run(self):
        config = EndToEndConfig(
            n_workers=40, arrival_rate=0.5, n_tasks=60, drain_time=300,
            arrival_process="poisson",
        )
        result = run_endtoend(react_policy(), config)
        assert result.summary["received"] == 60
