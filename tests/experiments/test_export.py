"""Tests for CSV/JSON result export."""

import csv
import json

import pytest

from repro.experiments.config import EndToEndConfig, MatchingSweepConfig, ScalabilityConfig
from repro.experiments.endtoend import run_comparison
from repro.experiments.export import (
    export_endtoend,
    export_matching_sweep,
    export_scalability,
    export_timeline,
)
from repro.experiments.matching_bench import run_matching_sweep
from repro.experiments.scalability import run_scalability
from repro.stats.timeline import Timeline, TimelineSample


@pytest.fixture(scope="module")
def tiny_comparison():
    return run_comparison(
        EndToEndConfig(n_workers=20, arrival_rate=0.3, n_tasks=40, drain_time=300)
    )


class TestMatchingExport:
    def test_round_trip(self, tmp_path):
        sweep = run_matching_sweep(
            MatchingSweepConfig(n_workers=20, task_counts=(5, 10), cycles_settings=(50,))
        )
        path = export_matching_sweep(sweep, tmp_path / "fig3_4.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(sweep.points)
        assert {r["algorithm"] for r in rows} == {"greedy", "react", "metropolis"}
        # weights survive the formatting round trip
        assert float(rows[0]["output_weight"]) == pytest.approx(
            sweep.points[0].output_weight, abs=1e-3
        )


class TestEndToEndExport:
    def test_writes_series_and_summary(self, tmp_path, tiny_comparison):
        written = export_endtoend(tiny_comparison, tmp_path)
        names = {p.name for p in written}
        assert "fig5_8_summary.json" in names
        assert "fig5_6_series_react.csv" in names
        summary = json.loads((tmp_path / "fig5_8_summary.json").read_text())
        assert set(summary) == {"react", "greedy", "traditional"}
        assert summary["react"]["received"] == 40

    def test_series_rows_match_metrics(self, tmp_path, tiny_comparison):
        export_endtoend(tiny_comparison, tmp_path)
        with (tmp_path / "fig5_6_series_react.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(tiny_comparison["react"].deadline_series)
        if rows:
            last = rows[-1]
            assert int(last["on_time"]) == tiny_comparison["react"].summary[
                "completed_on_time"
            ]


class TestScalabilityExport:
    def test_round_trip(self, tmp_path):
        result = run_scalability(
            ScalabilityConfig(worker_sizes=(10,), rates=(0.2,), duration=50.0,
                              drain_time=200.0)
        )
        path = export_scalability(result, tmp_path / "fig9_10.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3  # one per technique
        assert {r["technique"] for r in rows} == {"react", "greedy", "traditional"}


class TestTimelineExport:
    def test_round_trip(self, tmp_path):
        timeline = Timeline(
            samples=[
                TimelineSample(
                    time=0.0, unassigned=1, executing=0, busy_workers=0,
                    available_workers=3, trained_workers=0, completed=0,
                    completed_on_time=0, expired_unassigned=0,
                    matcher_busy_seconds=0.0,
                )
            ]
        )
        path = export_timeline(timeline, tmp_path / "timeline.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["unassigned"] == "1"
        assert rows[0]["available_workers"] == "3"

    def test_empty_timeline(self, tmp_path):
        path = export_timeline(Timeline(), tmp_path / "empty.csv")
        assert path.read_text().strip() == "time"
