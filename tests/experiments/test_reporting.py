"""Tests for figure-report rendering."""

import pytest

from repro.experiments.ablations import ablate_cycles, ablate_k_constant
from repro.experiments.config import (
    AblationConfig,
    EndToEndConfig,
    MatchingSweepConfig,
    ScalabilityConfig,
)
from repro.experiments.endtoend import run_comparison
from repro.experiments.matching_bench import run_matching_sweep
from repro.experiments.reporting import (
    report_ablation,
    report_fig3,
    report_fig4,
    report_fig5,
    report_fig6,
    report_fig7,
    report_fig8,
    report_fig9,
    report_fig10,
)
from repro.experiments.scalability import run_scalability


@pytest.fixture(scope="module")
def sweep():
    return run_matching_sweep(
        MatchingSweepConfig(n_workers=40, task_counts=(5, 20), cycles_settings=(100,))
    )


@pytest.fixture(scope="module")
def comparison():
    return run_comparison(
        EndToEndConfig(n_workers=30, arrival_rate=0.4, n_tasks=80, drain_time=300)
    )


@pytest.fixture(scope="module")
def scalability():
    return run_scalability(
        ScalabilityConfig(worker_sizes=(20,), rates=(0.3,), duration=100.0, drain_time=200.0)
    )


class TestMatchingReports:
    def test_fig3_mentions_anchors_and_algorithms(self, sweep):
        text = report_fig3(sweep)
        assert "Fig. 3" in text
        assert "99.7" in text
        assert "greedy" in text and "react@100" in text

    def test_fig4_contains_outputs(self, sweep):
        text = report_fig4(sweep)
        assert "Fig. 4" in text
        assert "output" in text


class TestEndToEndReports:
    def test_fig5(self, comparison):
        text = report_fig5(comparison)
        assert "Fig. 5" in text
        for name in ("react", "greedy", "traditional"):
            assert f"## {name}" in text

    def test_fig6(self, comparison):
        assert "positive" in report_fig6(comparison)

    def test_fig7_and_fig8_tables(self, comparison):
        assert "avg_worker_time_s" in report_fig7(comparison)
        assert "avg_total_time_s" in report_fig8(comparison)


class TestScalabilityReports:
    def test_fig9(self, scalability):
        text = report_fig9(scalability)
        assert "Fig. 9" in text
        assert "on_time" in text

    def test_fig10(self, scalability):
        assert "positive_fb" in report_fig10(scalability)


class TestAblationReports:
    def test_cycles_table(self):
        result = ablate_cycles(
            AblationConfig(cycles_sweep=(50, 100)), n_workers=20, n_tasks=20
        )
        text = report_ablation(result)
        assert "cycles" in text and "optimality" in text

    def test_k_table(self):
        result = ablate_k_constant(
            AblationConfig(k_sweep=(0.1, 1.0)), n_workers=20, n_tasks=20, cycles=200
        )
        text = report_ablation(result)
        assert "K" in text
