"""The disabled-instrumentation overhead guard (ISSUE acceptance: <= 2%).

Rather than diffing two noisy wall-clock measurements, the bench counts
every obs touchpoint the seeded run makes (call sites are unconditional, so
the count is identical with instrumentation on or off), micro-benchmarks
one no-op call, and bounds the disabled overhead as
``calls * cost_per_call / disabled_wall``.
"""

import pytest

from repro.experiments.perf import run_overhead_benchmark

#: The ISSUE's acceptance ceiling for disabled-instrumentation overhead.
MAX_OVERHEAD_FRACTION = 0.02


@pytest.fixture(scope="module")
def bench_result():
    return run_overhead_benchmark(quick=True)


class TestDisabledOverhead:
    def test_overhead_within_budget(self, bench_result):
        fraction = bench_result.params["overhead_fraction"]
        assert bench_result.params["obs_calls"] > 0
        assert fraction <= MAX_OVERHEAD_FRACTION, (
            f"disabled obs overhead {fraction:.2%} exceeds "
            f"{MAX_OVERHEAD_FRACTION:.0%} "
            f"({bench_result.params['obs_calls']} calls at "
            f"{bench_result.params['null_call_ns']:.0f} ns over "
            f"{bench_result.wall_seconds:.3f} s)"
        )

    def test_bench_record_schema(self, bench_result):
        record = bench_result.to_dict()
        assert record["bench"] == "endtoend_obs_overhead"
        assert {"obs_calls", "null_call_ns", "overhead_fraction"} <= set(
            record["params"]
        )
