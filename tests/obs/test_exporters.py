"""Exporter format tests: JSONL, Chrome trace, Prometheus, CSV."""

import json

import pytest

from repro.obs.exporters import (
    TRACE_PID,
    chrome_trace_dict,
    metrics_csv,
    parse_prometheus_text,
    prometheus_text,
    read_trace_jsonl,
    summarize_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer, worker_track


def _sample_tracer():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.instant("task.submitted", cat="task", task_id=1)
    tracer.complete(
        "task.execution", start=1.25, end=3.75, cat="task",
        tid=worker_track(4), task_id=1, worker_id=4,
    )
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = write_trace_jsonl(tracer.events, tmp_path / "run.trace.jsonl")
        assert read_trace_jsonl(path) == list(tracer.events)

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "ts": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace_jsonl(path)


class TestChromeTrace:
    def test_loadable_json_with_required_keys(self, tmp_path):
        path = write_chrome_trace(
            _sample_tracer().events, tmp_path / "run.trace.json"
        )
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        for entry in events:
            assert {"name", "ph", "pid", "tid"} <= set(entry)
            assert entry["pid"] == TRACE_PID
            if entry["ph"] != "M":
                assert isinstance(entry["ts"], int)

    def test_sim_seconds_mapped_to_microseconds(self):
        payload = chrome_trace_dict(_sample_tracer().events)
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1_250_000
        assert span["dur"] == 2_500_000

    def test_instants_carry_thread_scope(self):
        payload = chrome_trace_dict(_sample_tracer().events)
        instant = next(e for e in payload["traceEvents"] if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_worker_track_labeled(self):
        payload = chrome_trace_dict(_sample_tracer().events)
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert "worker-4" in names and "platform" in names


class TestPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("react_tasks_received_total", "tasks in").inc(42)
        gauge = registry.gauge("react_unassigned_tasks")
        gauge.set(3)
        hist = registry.histogram("react_batch_latency_seconds", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        faults = registry.counter("react_faults_total", labelnames=("kind",))
        faults.labels(kind="stall").inc()
        return registry

    def test_every_line_parses(self):
        text = prometheus_text(self._registry())
        parsed = parse_prometheus_text(text)
        assert parsed["react_tasks_received_total"] == 42
        assert parsed["react_unassigned_tasks"] == 3
        assert parsed['react_batch_latency_seconds_bucket{le="1"}'] == 1
        assert parsed['react_batch_latency_seconds_bucket{le="+Inf"}'] == 2
        assert parsed["react_batch_latency_seconds_count"] == 2
        assert parsed['react_faults_total{kind="stall"}'] == 1

    def test_help_and_type_comments_present(self):
        text = prometheus_text(self._registry())
        assert "# HELP react_tasks_received_total tasks in" in text
        assert "# TYPE react_batch_latency_seconds histogram" in text

    def test_deterministic(self):
        assert prometheus_text(self._registry()) == prometheus_text(self._registry())


class TestCsv:
    def test_header_and_rows(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        lines = metrics_csv(registry).splitlines()
        assert lines[0] == "metric,labels,value"
        assert "a_total,,2" in lines


class TestSummarize:
    def test_digest_mentions_counts_and_durations(self):
        text = summarize_trace(list(_sample_tracer().events))
        assert "events:            2" in text
        assert "task.execution" in text

    def test_empty_trace(self):
        assert summarize_trace([]) == "# empty trace"
