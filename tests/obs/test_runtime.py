"""Tests for the Observability facade and the null context."""

from repro.obs.runtime import NULL_OBS, Observability, resolve
from repro.sim.engine import Engine
from repro.sim.events import EventKind


class TestObservability:
    def test_bind_engine_drives_tracer_clock(self):
        obs = Observability()
        engine = Engine()
        obs.bind_engine(engine)
        engine.schedule(5.0, EventKind.CALLBACK, lambda e: obs.tracer.instant("tick"))
        engine.run()
        assert obs.tracer.events[0].ts == 5.0

    def test_export_writes_all_formats(self, tmp_path):
        obs = Observability()
        obs.registry.counter("a_total").inc()
        obs.tracer.instant("x", cat="test")
        written = obs.export(
            "run", trace_dir=tmp_path / "t", metrics_dir=tmp_path / "m"
        )
        names = sorted(p.name for p in written)
        assert names == [
            "run.metrics.csv", "run.prom", "run.trace.json", "run.trace.jsonl"
        ]
        assert all(p.exists() for p in written)

    def test_export_halves_skippable(self, tmp_path):
        obs = Observability()
        written = obs.export("run", trace_dir=tmp_path)
        assert sorted(p.suffix for p in written) == [".json", ".jsonl"]
        assert obs.export("run") == []


class TestNullObservability:
    def test_resolve_none_gives_null(self):
        assert resolve(None) is NULL_OBS
        obs = Observability()
        assert resolve(obs) is obs

    def test_null_context_is_inert(self, tmp_path):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.bind_engine(Engine()) is NULL_OBS
        assert NULL_OBS.export("run", trace_dir=tmp_path) == []
        NULL_OBS.registry.counter("x").inc()
        NULL_OBS.tracer.instant("x")
        assert NULL_OBS.registry.snapshot() == []
