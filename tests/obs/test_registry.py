"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    Sample,
    merge_snapshots,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("jobs_total") == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_registration_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("jobs_total", "jobs")
        b = registry.counter("jobs_total", "jobs")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total")
        with pytest.raises(ValueError):
            registry.gauge("jobs_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("1bad-name")


class TestLabels:
    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("faults_total", labelnames=("kind",))
        counter.labels(kind="stall").inc()
        counter.labels(kind="stall").inc()
        counter.labels(kind="blackout").inc()
        assert registry.value("faults_total", kind="stall") == 2
        assert registry.value("faults_total", kind="blackout") == 1

    def test_unlabeled_use_of_labeled_instrument_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("faults_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_labelnames_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("faults_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.labels(flavor="x")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert registry.value("depth") == 13


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=(1.0, 5.0))
        for value in (0.5, 2.0, 10.0):
            hist.observe(value)
        samples = {
            (s.name, s.labels): s.value for s in registry.snapshot()
        }
        assert samples[("latency_seconds_bucket", (("le", "1"),))] == 1
        assert samples[("latency_seconds_bucket", (("le", "5"),))] == 2
        assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("latency_seconds_sum", ())] == pytest.approx(12.5)
        assert samples[("latency_seconds_count", ())] == 3

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestSnapshot:
    def test_snapshot_order_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z_total").inc()
            gauge = registry.gauge("a_gauge")
            gauge.set(5)
            c = registry.counter("m_total", labelnames=("kind",))
            c.labels(kind="b").inc()
            c.labels(kind="a").inc()
            return [(s.name, s.labels, s.value) for s in registry.snapshot()]

        assert build() == build()
        names = [name for name, _, _ in build()]
        assert names == sorted(names)

    def test_collect_hook_runs_before_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("synced")
        state = {"value": 7}
        registry.add_collect_hook(lambda: gauge.set(state["value"]))
        registry.snapshot()
        assert registry.value("synced") == 7
        state["value"] = 9
        registry.snapshot()
        assert registry.value("synced") == 9


class TestMergeSnapshots:
    def _registry(self, inc_a: float, observe: float) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("a_total").inc(inc_a)
        registry.gauge("load").set(inc_a)
        registry.histogram("lat_seconds", buckets=(1.0, 5.0)).observe(observe)
        return registry

    def test_sums_matching_series(self):
        merged = merge_snapshots(
            [self._registry(2, 0.5).snapshot(), self._registry(3, 4.0).snapshot()]
        )
        by_key = {(s.name, s.labels): s.value for s in merged}
        assert by_key[("a_total", ())] == 5
        assert by_key[("load", ())] == 5
        assert by_key[("lat_seconds_count", ())] == 2
        assert by_key[("lat_seconds_sum", ())] == pytest.approx(4.5)
        assert by_key[("lat_seconds_bucket", (("le", "1"),))] == 1
        assert by_key[("lat_seconds_bucket", (("le", "+Inf"),))] == 2

    def test_preserves_first_seen_order(self):
        """Identical-schema shards merge in registry snapshot order — the
        property repro.dist relies on for byte-identical merged exports."""
        snap_a = self._registry(1, 0.5).snapshot()
        snap_b = self._registry(1, 0.5).snapshot()
        merged = merge_snapshots([snap_a, snap_b])
        assert [(s.name, s.labels) for s in merged] == [
            (s.name, s.labels) for s in snap_a
        ]

    def test_disjoint_series_are_appended(self):
        merged = merge_snapshots(
            [
                [Sample("only_a", (), 1.0)],
                [Sample("only_b", (("k", "v"),), 2.0)],
            ]
        )
        assert merged == [
            Sample("only_a", (), 1.0),
            Sample("only_b", (("k", "v"),), 2.0),
        ]

    def test_empty_input(self):
        assert merge_snapshots([]) == []


class TestNullObjects:
    def test_null_registry_hands_out_null_instrument(self):
        instrument = NULL_REGISTRY.counter("anything")
        assert instrument is NULL_INSTRUMENT
        instrument.inc()
        instrument.set(3)
        instrument.observe(1.0)
        instrument.labels(kind="x").inc()
        assert NULL_REGISTRY.snapshot() == []
