"""Acceptance tests: live telemetry mirrors the platform exactly.

The ISSUE acceptance criterion: a seeded end-to-end run records a
Perfetto-loadable trace and a Prometheus snapshot whose task-lifecycle
counters match the run's MetricsCollector exactly, and two identical seeded
runs produce identical snapshots.
"""

import pytest

from repro.experiments.chaos import ChaosConfig, run_chaos, standard_schedule
from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import run_endtoend
from repro.model.region import Region
from repro.model.task import Task
from repro.obs import Observability
from repro.obs.exporters import chrome_trace_dict, prometheus_text
from repro.platform.coordinator import Coordinator
from repro.platform.cost import ZeroCost
from repro.platform.policies import react_policy
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

SMALL = EndToEndConfig(
    n_workers=60, arrival_rate=1.0, n_tasks=200, drain_time=200.0
)


def _run(observability=None):
    return run_endtoend(react_policy(cycles=200), SMALL, observability=observability)


class TestCountersMatchCollector:
    @pytest.fixture(scope="class")
    def run(self):
        obs = Observability()
        result = _run(observability=obs)
        return obs, result.metrics

    def test_lifecycle_counters_exact(self, run):
        obs, metrics = run
        registry = obs.registry
        expected = {
            "react_tasks_received_total": metrics.received,
            "react_tasks_assigned_total": metrics.assigned,
            "react_task_reassignments_total": metrics.reassignments,
            "react_tasks_completed_total": metrics.completed,
            "react_tasks_completed_on_time_total": metrics.completed_on_time,
            "react_positive_feedbacks_total": metrics.positive_feedbacks,
            "react_tasks_expired_unassigned_total": metrics.expired_unassigned,
            "react_matcher_runs_total": metrics.matcher_invocations,
        }
        for name, value in expected.items():
            assert registry.value(name) == value, name
        assert registry.value("react_matcher_simulated_seconds_total") == (
            pytest.approx(metrics.matcher_simulated_seconds)
        )

    def test_attribute_counters_synced_at_snapshot(self, run):
        obs, metrics = run
        samples = {
            s.name: s.value for s in obs.registry.snapshot() if not s.labels
        }
        for attr in metrics.ATTRIBUTE_COUNTERS:
            assert samples[f"react_{attr}"] == pytest.approx(
                getattr(metrics, attr)
            ), attr

    def test_histogram_counts_match_outcomes(self, run):
        obs, metrics = run
        samples = {(s.name, s.labels): s.value for s in obs.registry.snapshot()}
        timed = [o for o in metrics.outcomes if o.total_time is not None]
        assert samples[("react_task_total_time_seconds_count", ())] == len(timed)
        assert samples[("react_task_total_time_seconds_sum", ())] == pytest.approx(
            sum(o.total_time for o in timed)
        )

    def test_trace_spans_match_lifecycle(self, run):
        obs, metrics = run
        tracer = obs.tracer
        assert len(tracer.by_name("task.submitted")) == metrics.received
        assert len(tracer.by_name("task.execution")) == metrics.completed
        assert len(tracer.by_name("task.assigned")) == metrics.assigned
        batches = tracer.by_name("batch")
        assert len(batches) == metrics.matcher_invocations
        assert all(e.ph == "X" for e in batches)

    def test_fit_cache_gauges_exported(self, run):
        obs, _ = run
        samples = {s.name: s.value for s in obs.registry.snapshot()}
        assert samples["react_fit_cache_hits"] > 0
        assert samples["react_fit_cache_misses"] > 0


class TestDeterminism:
    def test_identical_seeded_runs_identical_telemetry(self):
        obs_a, obs_b = Observability(), Observability()
        _run(observability=obs_a)
        _run(observability=obs_b)
        assert prometheus_text(obs_a.registry) == prometheus_text(obs_b.registry)
        assert chrome_trace_dict(obs_a.tracer.events) == chrome_trace_dict(
            obs_b.tracer.events
        )


class TestChaosTelemetry:
    def test_fault_events_and_labeled_counter(self):
        config = ChaosConfig(
            n_workers=30, arrival_rate=0.8, n_tasks=120, drain_time=150.0
        )
        obs = Observability()
        result = run_chaos(
            react_policy(cycles=200),
            config,
            schedule=standard_schedule(config),
            observability=obs,
        )
        chaos_events = obs.tracer.by_category("chaos")
        assert chaos_events, "fault activations must be traced"
        activations = [
            e for e in chaos_events if dict(e.args).get("action") == "activate"
        ]
        injected = int(result.summary["chaos_faults_injected"])
        assert len(activations) == injected
        labeled_total = sum(
            s.value
            for s in obs.registry.snapshot()
            if s.name == "react_chaos_fault_activations_total"
        )
        assert labeled_total == injected


class TestCoordinatorTelemetry:
    def test_region_split_counted_and_traced(self):
        obs = Observability()
        engine = Engine()
        coordinator = Coordinator(
            engine=engine,
            policy=react_policy(batch_threshold=1),
            regions=[Region(0, 10, 0, 10)],
            rng=RngRegistry(seed=5),
            cost_model=ZeroCost(),
            overload_queue_limit=3,
            observability=obs,
        )
        obs.bind_engine(engine)
        for _ in range(5):
            coordinator.submit_task(
                Task(latitude=5.0, longitude=5.0, deadline=600.0)
            )
        assert coordinator.splits_performed >= 1
        assert obs.registry.value("react_region_splits_total") == (
            coordinator.splits_performed
        )
        assert obs.registry.value("react_regions") == len(coordinator.regions)
        splits = obs.tracer.by_name("region.split")
        assert len(splits) == coordinator.splits_performed
        assert splits[0].cat == "coordinator"
