"""Unit tests for the sim-time tracer."""

from repro.obs.trace import (
    NULL_TRACER,
    TraceEvent,
    Tracer,
    worker_track,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRecording:
    def test_instant_stamps_sim_time(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.now = 12.5
        tracer.instant("task.submitted", cat="task", task_id=7)
        (event,) = tracer.events
        assert event.ph == "i"
        assert event.ts == 12.5
        assert dict(event.args) == {"task_id": 7}

    def test_complete_records_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.now = 30.0
        tracer.complete("batch", start=10.0, cat="scheduler")
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.ts == 10.0
        assert event.dur == 20.0

    def test_negative_duration_clamped(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.complete("x", start=5.0, end=1.0)
        assert tracer.events[0].dur == 0.0

    def test_span_context_manager(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", cat="test"):
            clock.now = 3.0
        (event,) = tracer.events
        assert event.ph == "X" and event.ts == 0.0 and event.dur == 3.0

    def test_set_clock_late_binding(self):
        tracer = Tracer()
        tracer.set_clock(lambda: 42.0)
        tracer.instant("x")
        assert tracer.events[0].ts == 42.0

    def test_query_helpers(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.instant("a", cat="one")
        tracer.instant("b", cat="two")
        tracer.instant("a", cat="two")
        assert len(tracer.by_name("a")) == 2
        assert len(tracer.by_category("two")) == 2
        assert len(tracer) == 3


class TestRingBuffer:
    def test_oldest_events_evicted_at_capacity(self):
        tracer = Tracer(clock=lambda: 0.0, max_events=3)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert [e.name for e in tracer.events] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2
        assert tracer.recorded == 5

    def test_unbounded_when_max_events_none(self):
        tracer = Tracer(clock=lambda: 0.0, max_events=None)
        for i in range(10):
            tracer.instant("e")
        assert len(tracer) == 10 and tracer.dropped == 0


class TestEventSerialization:
    def test_round_trip(self):
        event = TraceEvent(
            name="batch", cat="scheduler", ph="X", ts=1.5, dur=0.5, tid=1,
            args=(("matched", 3),),
        )
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestNullTracer:
    def test_all_methods_are_noops(self):
        NULL_TRACER.instant("x", cat="c", a=1)
        NULL_TRACER.complete("x", start=0.0)
        with NULL_TRACER.span("x"):
            pass
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.by_name("x") == []
        assert NULL_TRACER.recorded == 0


def test_worker_track_offset():
    assert worker_track(0) == 100
    assert worker_track(7) == 107
