"""Tests for the ``obs`` subcommand and the --trace-out/--metrics-out flags."""

import json

import pytest

from repro.experiments.cli import main as experiments_main
from repro.obs.cli import main as obs_main
from repro.obs.exporters import write_trace_jsonl
from repro.obs.trace import Tracer


@pytest.fixture()
def trace_file(tmp_path):
    tracer = Tracer(clock=lambda: 0.0)
    tracer.instant("task.submitted", cat="task", task_id=1)
    tracer.complete("batch", start=0.5, end=1.5, cat="scheduler", matched=2)
    return write_trace_jsonl(tracer.events, tmp_path / "run.trace.jsonl")


class TestObsSubcommand:
    def test_summarize(self, trace_file, capsys):
        assert obs_main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out and "batch" in out

    def test_convert_to_chrome(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "run.trace.json"
        assert obs_main(
            ["convert", str(trace_file), "--to", "chrome", "--out", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]

    def test_missing_file_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit):
            obs_main(["summarize", str(tmp_path / "missing.jsonl")])

    def test_dispatch_through_experiments_cli(self, trace_file, capsys):
        assert experiments_main(["obs", "summarize", str(trace_file)]) == 0
        assert "trace summary" in capsys.readouterr().out
