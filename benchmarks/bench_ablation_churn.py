"""ABL-CHURN — worker churn sensitivity (§I "short connectivity cycles").

Not a paper figure: the paper motivates REACT with a "highly dynamic crowd"
but evaluates on a static worker set.  This ablation quantifies the
robustness claim: REACT's on-time fraction under increasingly aggressive
connectivity cycles (mean online session of ∞/600/180/60 s, with 60 s
absences), and the same sweep for the Traditional baseline.  The middleware
mechanisms under test: withdrawal/re-queue of a departing worker's task and
history-preserving re-registration.
"""

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import run_endtoend
from repro.platform.policies import react_policy, traditional_policy
from repro.stats.summaries import format_table

SESSIONS = (None, 600.0, 180.0, 60.0)


def _config(session):
    return EndToEndConfig(
        n_workers=150,
        arrival_rate=1.5,
        n_tasks=1200,
        drain_time=400,
        seed=23,
        churn_mean_session=session,
        churn_mean_absence=60.0,
    )


def test_ablation_churn_single_run_timing(benchmark):
    result = benchmark.pedantic(
        run_endtoend,
        args=(react_policy(), _config(180.0)),
        rounds=1,
        iterations=1,
    )
    result.metrics.check_conservation()


def test_ablation_churn_report(benchmark):
    def sweep():
        rows = []
        for session in SESSIONS:
            label = "static" if session is None else f"{session:.0f}s"
            react = run_endtoend(react_policy(), _config(session))
            trad = run_endtoend(traditional_policy(), _config(session))
            rows.append(
                (
                    label,
                    f"{react.summary['on_time_fraction']:.1%}",
                    f"{trad.summary['on_time_fraction']:.1%}",
                    int(react.summary["reassignments"]),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("# ablation: churn (mean online session; 60 s absences)")
    print(format_table(["session", "react_on_time", "trad_on_time",
                        "react_reassign"], rows))

    on_time = [float(r[1].rstrip("%")) for r in rows]
    # The system stays fully functional at every churn level; in fact, at
    # light load churn *helps* REACT: a departing worker's task is
    # withdrawn and re-queued immediately, which rescues tasks stuck with
    # dawdlers the Eq. 2 monitor cannot touch yet (untrained profiles).
    # Churn acts as a blunt universal timeout — an emergent effect worth
    # knowing about when reading the paper's §I motivation.
    assert all(v > 60.0 for v in on_time)
    # REACT beats Traditional at every churn level
    for _, react_s, trad_s, _ in rows:
        assert float(react_s.rstrip("%")) > float(trad_s.rstrip("%"))
