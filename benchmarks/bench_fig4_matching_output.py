"""Fig. 4 — matching output (Σ weights) vs. number of tasks.

Paper shape: on full graphs Greedy is near-optimal; REACT beats Metropolis
at equal cycles ("the REACT algorithm results on a higher output even with a
third of the cycles"); the randomized matchers degrade once the fixed cycle
budget becomes insufficient for the graph size.
"""

import numpy as np
import pytest

from repro.core.matching.hungarian import HungarianMatcher
from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.experiments.reporting import report_fig4
from repro.graph.bipartite import BipartiteGraph

from _common import matching_results

_GRAPH = BipartiteGraph.full(np.random.default_rng(11).random((300, 300)))


def test_fig4_react_output_quality(benchmark):
    """Time REACT while recording its output against the optimum."""
    matcher = ReactMatcher(ReactParameters(cycles=3000))
    result = benchmark(matcher.match, _GRAPH, np.random.default_rng(1))
    optimal = HungarianMatcher().match(_GRAPH)
    assert 0 < result.total_weight <= optimal.total_weight


def test_fig4_hungarian_reference(benchmark):
    result = benchmark(HungarianMatcher().match, _GRAPH)
    assert result.size == 300


def test_fig4_report_and_shape(benchmark):
    sweep = matching_results()
    report = benchmark.pedantic(report_fig4, args=(sweep,), rounds=1, iterations=1)
    print()
    print(report)
    largest = max(p.n_tasks for p in sweep.points)
    at_largest = {
        (p.algorithm, p.cycles): p.output_weight
        for p in sweep.points
        if p.n_tasks == largest
    }
    optimal = at_largest[("hungarian", 0)]
    # Greedy ~ optimal on the full graph.
    assert at_largest[("greedy", 0)] >= 0.95 * optimal
    # REACT > Metropolis at equal cycles.
    assert at_largest[("react", 1000)] > at_largest[("metropolis", 1000)]
    assert at_largest[("react", 3000)] > at_largest[("metropolis", 3000)]
    # Paper: "REACT ... higher output even with a third of the cycles".
    assert at_largest[("react", 1000)] > at_largest[("metropolis", 3000)]
    # Fixed cycles become insufficient as the task count grows: REACT@1000's
    # fraction of optimal falls from the smallest to the largest point.
    smallest = sorted({p.n_tasks for p in sweep.points})[1]  # skip the 1-task point
    react_small = next(p for p in sweep.series("react", 1000) if p.n_tasks == smallest)
    optimal_small = next(
        p for p in sweep.series("hungarian") if p.n_tasks == smallest
    )
    react_large = at_largest[("react", 1000)]
    assert (react_large / optimal) < (
        react_small.output_weight / optimal_small.output_weight
    )
