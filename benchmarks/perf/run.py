#!/usr/bin/env python
"""Perf-regression driver: run the hot-path micro-benchmarks.

Thin wrapper over :mod:`repro.experiments.perf` so the harness can be run
without installing the package::

    python benchmarks/perf/run.py [--quick] [--out DIR]

Writes ``BENCH_matching.json`` and ``BENCH_platform.json`` to the repo root
(or ``--out DIR``) and prints the throughput table.  Compare the JSON files
across commits to catch regressions; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perf import run_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads for a smoke run"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="directory for BENCH_*.json"
    )
    args = parser.parse_args(argv)
    print(run_bench(quick=args.quick, out_dir=args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
