#!/usr/bin/env python
"""Perf-regression driver: run the hot-path micro-benchmarks.

Thin wrapper over :mod:`repro.experiments.perf` so the harness can be run
without installing the package::

    python benchmarks/perf/run.py [--quick] [--out DIR]
    python benchmarks/perf/run.py --endtoend-only [--parallel N]
    python benchmarks/perf/run.py --endtoend-only --check BENCH_endtoend.json

Writes ``BENCH_matching.json``, ``BENCH_platform.json`` and
``BENCH_endtoend.json`` to the repo root (or ``--out DIR``) and prints the
throughput table.  Compare the JSON files across commits to catch
regressions; see docs/PERFORMANCE.md.

``--check BASELINE`` re-runs the end-to-end throughput suite and exits
non-zero when any sequential-variant rate falls more than ``--tolerance``
(default 20%) below the committed baseline — the CI regression guard.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.perf import (  # noqa: E402
    check_endtoend_regression,
    format_report,
    repo_root,
    run_bench,
    run_endtoend_throughput,
    write_bench_file,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads for a smoke run"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="directory for BENCH_*.json"
    )
    parser.add_argument(
        "--endtoend-only",
        action="store_true",
        help="run only the end-to-end throughput suite (BENCH_endtoend.json)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="shard count for the parallel end-to-end variant "
        "(default: one shard per policy; 0 disables the variant)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare fresh end-to-end throughput against this committed "
        "BENCH_endtoend.json and exit 1 on regression (implies "
        "--endtoend-only)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional throughput drop for --check (default 0.2)",
    )
    args = parser.parse_args(argv)

    if args.check or args.endtoend_only:
        out_dir = repo_root() if args.out is None else Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        results = run_endtoend_throughput(
            quick=args.quick, parallel=args.parallel
        )
        print(format_report(results))
        print(f"# wrote {write_bench_file(out_dir / 'BENCH_endtoend.json', results)}")
        if args.check:
            failures = check_endtoend_regression(
                results, Path(args.check), tolerance=args.tolerance
            )
            if failures:
                for failure in failures:
                    print(f"REGRESSION: {failure}", file=sys.stderr)
                return 1
            print(f"# throughput within {args.tolerance:.0%} of {args.check}")
        return 0

    print(
        run_bench(
            quick=args.quick, out_dir=args.out, endtoend_parallel=args.parallel
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
