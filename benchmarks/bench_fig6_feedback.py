"""Fig. 6 — cumulative positive feedbacks.

Paper: REACT earns 4941 positive feedbacks vs. Traditional's 3066 —
"selecting 'good' workers even with a non optimal matching results on a
higher quality output".  Feedback is positive only for on-time completions,
with probability equal to the worker's latent quality.
"""

from repro.experiments.endtoend import run_endtoend
from repro.experiments.reporting import report_fig6
from repro.platform.policies import traditional_policy

from _common import ENDTOEND_TIMING_CONFIG, endtoend_results


def test_fig6_traditional_endtoend(benchmark):
    """Wall-clock of one full Traditional (AMT-like) simulation."""
    result = benchmark.pedantic(
        run_endtoend,
        args=(traditional_policy(), ENDTOEND_TIMING_CONFIG),
        rounds=1,
        iterations=1,
    )
    result.metrics.check_conservation()


def test_fig6_report_and_shape(benchmark):
    results = endtoend_results()
    report = benchmark.pedantic(report_fig6, args=(results,), rounds=1, iterations=1)
    print()
    print(report)

    react = results["react"].summary
    trad = results["traditional"].summary
    # REACT collects clearly more positive feedback (paper: 4941 vs 3066,
    # a 1.6x ratio) — the Eq. 1 weight routes work to accurate workers.
    assert react["positive_feedbacks"] >= 1.3 * trad["positive_feedbacks"]
    # Feedback can only come from completed-on-time tasks.
    for summary in (react, trad):
        assert summary["positive_feedbacks"] <= summary["completed_on_time"]
