"""Shared fixtures/helpers for the figure benchmarks.

Each ``bench_figN_*.py`` regenerates one figure of the paper: it times the
relevant computation with pytest-benchmark, prints the same rows/series the
paper plots (via :mod:`repro.experiments.reporting`), and asserts the
figure's qualitative shape so a regression cannot silently pass.

The Figs. 5-8 benches run the paper's full-scale workload (750 workers,
9.375 tasks/s, 8371 tasks) and the Figs. 9-10 benches the full size sweep —
each simulated once and shared across the bench files via ``lru_cache``
(roughly half a minute and a minute and a half of wall-clock respectively).
The per-test ``benchmark`` timings use a 1/5-scale run so pytest-benchmark
rounds stay cheap.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.config import (
    EndToEndConfig,
    MatchingSweepConfig,
    ScalabilityConfig,
)
from repro.experiments.endtoend import run_comparison
from repro.experiments.matching_bench import run_matching_sweep
from repro.experiments.scalability import run_scalability

#: Full paper-scale Figs. 5-8 workload (§V-C).
ENDTOEND_CONFIG = EndToEndConfig()

#: 1/5-scale variant used for the per-test wall-clock timing rounds.
ENDTOEND_TIMING_CONFIG = EndToEndConfig(
    n_workers=150, arrival_rate=1.875, n_tasks=1675, drain_time=400, seed=42
)

#: Scaled Figs. 3-4 sweep: 300 workers, tasks up to 300, two cycle settings.
MATCHING_CONFIG = MatchingSweepConfig(
    n_workers=300,
    task_counts=(1, 75, 150, 300),
    cycles_settings=(1000, 3000),
    include_hungarian=True,
    seed=7,
)

#: The paper's full Figs. 9-10 sweep (100..1000 workers, 1.5..12.5 tasks/s).
SCALABILITY_CONFIG = ScalabilityConfig()


@lru_cache(maxsize=1)
def endtoend_results():
    """One shared Figs. 5-8 comparison run (REACT / Greedy / Traditional)."""
    return run_comparison(ENDTOEND_CONFIG)


@lru_cache(maxsize=1)
def matching_results():
    """One shared Figs. 3-4 sweep."""
    return run_matching_sweep(MATCHING_CONFIG)


@lru_cache(maxsize=1)
def scalability_results():
    """One shared Figs. 9-10 sweep."""
    return run_scalability(SCALABILITY_CONFIG)
