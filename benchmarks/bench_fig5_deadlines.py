"""Fig. 5 — cumulative tasks finished before the deadline.

Paper (750 workers, 9.375 tasks/s, 8371 tasks): REACT finishes 6091 on
time, Traditional 4264 (REACT ≈ +43%), and Greedy rises before collapsing
under matcher-induced queueing.  The report below comes from the full
paper-scale run; the timing round uses the 1/5-scale workload.
"""

from repro.experiments.endtoend import run_endtoend
from repro.experiments.reporting import report_fig5
from repro.platform.policies import react_policy

from _common import ENDTOEND_TIMING_CONFIG, endtoend_results


def test_fig5_react_endtoend(benchmark):
    """Wall-clock of one full REACT end-to-end simulation."""
    result = benchmark.pedantic(
        run_endtoend, args=(react_policy(), ENDTOEND_TIMING_CONFIG), rounds=1, iterations=1
    )
    result.metrics.check_conservation()


def test_fig5_report_and_shape(benchmark):
    results = endtoend_results()
    report = benchmark.pedantic(report_fig5, args=(results,), rounds=1, iterations=1)
    print()
    print(report)

    react = results["react"].summary
    greedy = results["greedy"].summary
    trad = results["traditional"].summary

    # REACT meets the most deadlines; Traditional trails by a wide margin.
    assert react["completed_on_time"] > trad["completed_on_time"]
    assert react["completed_on_time"] > greedy["completed_on_time"]
    # The paper's headline: REACT meets the deadlines of substantially more
    # tasks than the AMT-like baseline (paper: up to 61% more).
    assert react["completed_on_time"] >= 1.2 * trad["completed_on_time"]
    # Greedy's matcher latency costs it real work at this load.
    assert greedy["matcher_simulated_seconds"] > react["matcher_simulated_seconds"]
