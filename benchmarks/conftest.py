"""Benchmark-suite configuration: make `_common` importable and default to
group-by-name output."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
