"""ABL-C — the cycles trade-off (§IV-A "Time vs. Optimal result trade-off").

"This parameter plays a significant role both to the optimality of the
solution and to the execution time" — the sweep quantifies output quality
(fraction of the Hungarian optimum) and wall-clock per cycle budget, plus
the §IV-A adaptive-cycles extension.
"""

import numpy as np

from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.experiments.ablations import ablate_cycles
from repro.experiments.config import AblationConfig
from repro.experiments.reporting import report_ablation
from repro.graph.bipartite import BipartiteGraph

_GRAPH = BipartiteGraph.full(np.random.default_rng(2).random((300, 300)))


def test_ablation_cycles_react_10k(benchmark):
    matcher = ReactMatcher(ReactParameters(cycles=10_000))
    result = benchmark(matcher.match, _GRAPH, np.random.default_rng(0))
    result.validate()


def test_ablation_cycles_report(benchmark):
    result = benchmark.pedantic(
        ablate_cycles, args=(AblationConfig(),),
        kwargs=dict(n_workers=300, n_tasks=300), rounds=1, iterations=1,
    )
    print()
    print(report_ablation(result))

    fixed = [p for p in result.points if not p.adaptive]
    # more cycles -> strictly better output across the sweep's endpoints
    assert fixed[-1].output_weight > fixed[0].output_weight
    # the adaptive rule reaches at least the best fixed setting's quality
    adaptive = next(p for p in result.points if p.adaptive)
    assert adaptive.output_weight >= 0.95 * max(p.output_weight for p in fixed)
