"""ABL-T — Eq. 2 reassignment-threshold ablation (§IV-B's 10% choice).

Sweeps the probability threshold under which the Dynamic Assignment
Component pulls a running task.  Threshold 0 disables reassignment entirely;
very high thresholds pull eagerly and churn workers.
"""

from repro.experiments.ablations import _small_endtoend, ablate_threshold
from repro.experiments.config import AblationConfig
from repro.experiments.endtoend import run_endtoend
from repro.experiments.reporting import report_ablation
from repro.platform.policies import react_policy


def test_ablation_threshold_single_run_timing(benchmark):
    result = benchmark.pedantic(
        run_endtoend,
        args=(react_policy(reassign_threshold=0.1), _small_endtoend(11)),
        rounds=1,
        iterations=1,
    )
    result.metrics.check_conservation()


def test_ablation_threshold_report(benchmark):
    result = benchmark.pedantic(
        ablate_threshold, args=(AblationConfig(),), rounds=1, iterations=1
    )
    print()
    print(report_ablation(result))

    by_threshold = {p.value: p for p in result.points}
    # no reassignment at threshold 0
    assert by_threshold[0.0].reassignments == 0
    # the paper's 10% beats doing nothing
    assert by_threshold[0.1].on_time_fraction > by_threshold[0.0].on_time_fraction
    # reassignment volume grows with the threshold
    values = sorted(by_threshold)
    counts = [by_threshold[v].reassignments for v in values]
    assert counts == sorted(counts)
