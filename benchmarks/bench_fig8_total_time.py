"""Fig. 8 — average total execution time (submission → completion).

Includes queueing and any reassignments.  Paper shape: REACT is lowest
*despite* reassigning tasks ("it manages to process them faster than the
traditional technique"); Greedy is inflated by matcher-induced queueing;
Traditional is high because delayed executions run to their (late) end.
"""

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import run_endtoend
from repro.experiments.reporting import report_fig8
from repro.platform.policies import react_policy

from _common import endtoend_results

#: Zero-latency control: isolates the matcher-cost effect on total time.
ZERO_COST_CONFIG = EndToEndConfig(
    n_workers=150, arrival_rate=1.875, n_tasks=1675, drain_time=400, seed=42,
    cost_model="zero",
)


def test_fig8_react_zero_cost_control(benchmark):
    """Timing of the zero-matcher-latency control run."""
    result = benchmark.pedantic(
        run_endtoend, args=(react_policy(), ZERO_COST_CONFIG), rounds=1, iterations=1
    )
    assert result.summary["matcher_simulated_seconds"] == 0.0


def test_fig8_report_and_shape(benchmark):
    results = endtoend_results()
    report = benchmark.pedantic(report_fig8, args=(results,), rounds=1, iterations=1)
    print()
    print(report)

    tt = {name: r.avg_total_time for name, r in results.items()}
    # REACT processes tasks fastest end-to-end, despite its reassignments.
    assert tt["react"] < tt["traditional"]
    assert tt["react"] < tt["greedy"]
    # Greedy's queueing inflates total time beyond even the traditional
    # baseline at the paper's 750-worker operating point (Fig. 8 shows the
    # same: "queueing forced the Greedy approach to result high average
    # execution times").
    assert tt["greedy"] > tt["traditional"]
