"""Fig. 9 — % of tasks finished before the deadline vs. graph size.

Paper sweep: {100, 250, 500, 750, 1000} workers at {1.5, 3.125, 6.25,
9.375, 12.5} tasks/s.  Shapes: Greedy beats REACT at size 100 but drops to
16% at size 1000; REACT is "a little influenced" by size; Traditional is
essentially flat.
"""

from repro.experiments.config import ScalabilityConfig
from repro.experiments.reporting import report_fig9
from repro.experiments.scalability import run_scalability
from repro.platform.policies import react_policy

from _common import scalability_results

#: Tiny sweep used only for the wall-clock timing round.
TIMING_SWEEP = ScalabilityConfig(
    worker_sizes=(40,), rates=(0.5,), duration=200.0, drain_time=300.0
)


def test_fig9_sweep_timing(benchmark):
    result = benchmark.pedantic(
        run_scalability,
        args=(TIMING_SWEEP, [react_policy()]),
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == 1


def test_fig9_report_and_shape(benchmark):
    sweep = scalability_results()
    report = benchmark.pedantic(report_fig9, args=(sweep,), rounds=1, iterations=1)
    print()
    print(report)

    react = {p.n_workers: p.on_time_fraction for p in sweep.series("react")}
    greedy = {p.n_workers: p.on_time_fraction for p in sweep.series("greedy")}
    trad = {p.n_workers: p.on_time_fraction for p in sweep.series("traditional")}

    # Greedy wins (or ties) at the smallest size but collapses at the top.
    assert greedy[100] >= react[100] - 0.03
    assert greedy[1000] < 0.25  # paper: 16%
    assert greedy[1000] < greedy[100] / 2
    # REACT degrades only mildly across a 10x size increase.
    assert max(react.values()) - min(react.values()) < 0.10
    # Traditional is flat and always below REACT.
    assert max(trad.values()) - min(trad.values()) < 0.10
    for size in react:
        assert react[size] > trad[size]
