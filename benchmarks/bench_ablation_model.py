"""ABL-MODEL — does the §IV-B power-law choice matter?

The paper justifies its deadline model with the power-law observation from
Ipeirotis' AMT analysis.  This ablation swaps the distribution family behind
Eqs. 2-3 (power law / empirical CCDF / lognormal) on the reduced end-to-end
workload and measures how much of REACT's advantage survives.  The expected
answer — and a useful finding for adopters — is that the *mechanism*
(monitor + reassignment) carries most of the benefit, with the tail family
a second-order effect.
"""

from repro.experiments.config import EndToEndConfig
from repro.experiments.endtoend import run_endtoend
from repro.platform.policies import react_policy, traditional_policy
from repro.stats.summaries import format_table

MODELS = ("power-law", "empirical", "lognormal")
CONFIG = EndToEndConfig(
    n_workers=150, arrival_rate=1.875, n_tasks=1600, drain_time=400, seed=42
)


def test_ablation_model_single_run_timing(benchmark):
    result = benchmark.pedantic(
        run_endtoend,
        args=(react_policy(duration_model="empirical"), CONFIG),
        rounds=1,
        iterations=1,
    )
    result.metrics.check_conservation()


def test_ablation_model_report(benchmark):
    def sweep():
        rows = []
        for model in MODELS:
            run = run_endtoend(react_policy(duration_model=model), CONFIG)
            rows.append(
                (
                    model,
                    f"{run.summary['on_time_fraction']:.1%}",
                    f"{run.summary['positive_feedback_fraction']:.1%}",
                    int(run.summary["reassignments"]),
                )
            )
        baseline = run_endtoend(traditional_policy(), CONFIG)
        rows.append(
            (
                "traditional",
                f"{baseline.summary['on_time_fraction']:.1%}",
                f"{baseline.summary['positive_feedback_fraction']:.1%}",
                0,
            )
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("# ablation: duration-distribution family behind Eqs. 2-3")
    print(format_table(["model", "on_time", "positive_fb", "reassignments"], rows))

    on_time = {r[0]: float(r[1].rstrip("%")) for r in rows}
    # every family clearly beats the no-model baseline: the mechanism is
    # what matters most
    for model in MODELS:
        assert on_time[model] > on_time["traditional"] + 10.0
    # families agree within a modest band
    model_values = [on_time[m] for m in MODELS]
    assert max(model_values) - min(model_values) < 12.0
