"""ABL-K — acceptance-temperature ablation (Algorithm 1's constant K).

The paper never states K.  This sweep shows why our default is small
(0.05): with K comparable to the edge weights, the walk's equilibrium keeps
dropping good edges (removal acceptance e^{-w/K} is large), flattening the
output; with tiny K the algorithm is a pure hill-climber with eviction.
"""

import numpy as np

from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.experiments.ablations import ablate_k_constant
from repro.experiments.config import AblationConfig
from repro.experiments.reporting import report_ablation
from repro.graph.bipartite import BipartiteGraph

_GRAPH = BipartiteGraph.full(np.random.default_rng(4).random((200, 200)))


def test_ablation_k_default_timing(benchmark):
    matcher = ReactMatcher(ReactParameters(cycles=5000, k_constant=0.05))
    result = benchmark(matcher.match, _GRAPH, np.random.default_rng(0))
    result.validate()


def test_ablation_k_report(benchmark):
    result = benchmark.pedantic(
        ablate_k_constant, args=(AblationConfig(),),
        kwargs=dict(n_workers=200, n_tasks=200, cycles=20_000),
        rounds=1, iterations=1,
    )
    print()
    print(report_ablation(result))

    by_k = {p.k_constant: p.output_weight for p in result.points}
    ks = sorted(by_k)
    # low temperature dominates high temperature at converged budgets
    assert by_k[ks[0]] > by_k[ks[-1]]
