"""Tiered escalation benefit (§III-A tiers).

The paper sketches multi-tier region organisation "to collect task
information from all the users in a scalable manner" without evaluating
it.  This bench constructs the situation tiers exist for — workers
clustered in a few hot cells while tasks arrive uniformly over the whole
area — and measures the fraction of tasks served with escalation enabled
versus a flat per-cell deployment where a task may only use its own cell's
workers.
"""

import numpy as np

from repro.model.task import Task, TaskCategory
from repro.platform.cost import ZeroCost
from repro.platform.policies import react_policy
from repro.platform.tiers import TieredCoordinator
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess
from repro.sim.rng import STREAM_ARRIVALS, STREAM_TASKS, RngRegistry
from repro.workload.arrivals import poisson_gaps
from repro.workload.population import PopulationConfig, generate_population

DEPTH = 2  # 4x4 leaf grid
WORKERS = 80
TASKS = 400
RATE = 0.8
#: workers live only in these leaf cells (two hot corners)
HOT_CELLS = ((0, 0), (3, 3))


def _run(escalate_after):
    engine = Engine()
    rng = RngRegistry(seed=55)
    coordinator = TieredCoordinator(
        engine=engine,
        policy=react_policy(batch_threshold=1),
        rng=rng,
        depth=DEPTH,
        escalate_after=escalate_after,
        check_interval=2.0,
        cost_model=ZeroCost(),
    )
    side = 2**DEPTH
    placement = rng.stream("placement")
    population = generate_population(
        rng.stream("population"), PopulationConfig(size=WORKERS)
    )
    for i, (profile, behavior) in enumerate(population):
        r, c = HOT_CELLS[i % len(HOT_CELLS)]
        profile.latitude = float((r + placement.random()) / side)
        profile.longitude = float((c + placement.random()) / side)
        coordinator.add_worker(profile, behavior)

    task_rng = rng.stream(STREAM_TASKS)

    def submit(_):
        coordinator.submit_task(
            Task(
                latitude=float(task_rng.uniform(0.0, 0.999)),
                longitude=float(task_rng.uniform(0.0, 0.999)),
                deadline=float(task_rng.uniform(60.0, 120.0)),
                category=TaskCategory.LOCATION_SURVEY,
                submitted_at=engine.now,
            )
        )

    GeneratorProcess(
        engine,
        poisson_gaps(RATE, rng.stream(STREAM_ARRIVALS), TASKS),
        submit,
        kind=EventKind.TASK_ARRIVAL,
    )
    engine.run(until=TASKS / RATE + 300.0)
    summary = coordinator.aggregate_summary()
    coordinator.stop()
    return summary


def test_tiered_escalation_benefit(benchmark):
    with_escalation = benchmark.pedantic(_run, args=(10.0,), rounds=1, iterations=1)
    # "flat" deployment: escalation effectively disabled (fires after the
    # longest deadline has already lapsed)
    flat = _run(130.0)

    print()
    print("# tiered escalation (workers clustered in 2 of 16 cells)")
    print(f"flat per-cell deployment:  on_time={flat['on_time_fraction']:.1%} "
          f"escalations={flat['escalations']:.0f}")
    print(f"escalation after 10 s:     "
          f"on_time={with_escalation['on_time_fraction']:.1%} "
          f"escalations={with_escalation['escalations']:.0f}")

    assert with_escalation["escalations"] > 0
    # with workers absent from 14 of 16 cells, a flat deployment loses most
    # tasks; escalation recovers the large majority of them
    assert flat["on_time_fraction"] < 0.35
    assert with_escalation["on_time_fraction"] > 2 * flat["on_time_fraction"]
