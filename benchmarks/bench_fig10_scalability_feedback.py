"""Fig. 10 — % of positive feedback vs. graph size.

Paper: "The graph seems to be proportional to figure 9 for all approaches"
— feedback tracks the on-time fraction because positive feedback requires
an on-time completion; REACT's edge over Traditional persists at every size
because Eq. 1 routes work to accurate workers.
"""

import numpy as np

from repro.experiments.reporting import report_fig10
from repro.workload.population import PopulationConfig, generate_population

from _common import scalability_results


def test_fig10_population_generation_timing(benchmark):
    """Wall-clock of generating the paper's largest worker population."""
    rng = np.random.default_rng(0)
    population = benchmark(generate_population, rng, PopulationConfig(size=1000))
    assert len(population) == 1000


def test_fig10_report_and_shape(benchmark):
    sweep = scalability_results()
    report = benchmark.pedantic(report_fig10, args=(sweep,), rounds=1, iterations=1)
    print()
    print(report)

    for p in sweep.points:
        # positive feedback requires an on-time completion
        assert p.positive_feedback_fraction <= p.on_time_fraction + 1e-9

    react = {p.n_workers: p.positive_feedback_fraction for p in sweep.series("react")}
    trad = {
        p.n_workers: p.positive_feedback_fraction
        for p in sweep.series("traditional")
    }
    greedy = {p.n_workers: p.positive_feedback_fraction for p in sweep.series("greedy")}

    for size in react:
        assert react[size] > trad[size]
    # Greedy's feedback collapses along with its missed deadlines (Fig. 10
    # mirrors Fig. 9).
    assert greedy[1000] < greedy[100] / 2
