"""§VI comparison — REACT single assignment vs. replication + majority vote.

Quantifies the paper's related-work claim: "our technique manages to define
the most suitable workers before the execution of the tasks and thus to
reduce the cost of the multiple assignments."  The bench runs REACT (R = 1,
profiled) against an AMT-like platform voting over R ∈ {1, 3, 5} clones and
asserts that REACT's reliability is at least competitive with vote-5 at a
fifth of the payment cost.
"""

from repro.experiments.voting import (
    VotingConfig,
    report_voting,
    run_voting_comparison,
)


def test_voting_comparison(benchmark):
    result = benchmark.pedantic(
        run_voting_comparison, args=(VotingConfig(),), rounds=1, iterations=1
    )
    print()
    print(report_voting(result))

    by = result.by_label()
    # voting helps the blind platform...
    assert by["vote-3"].success_fraction > by["vote-1"].success_fraction
    # ...but profiled single assignment matches or beats the heaviest
    # replication level at 1/5 of the reward spend
    assert by["react"].success_fraction >= by["vote-5"].success_fraction - 0.02
    assert by["react"].rewards_per_task == 1.0
    assert by["vote-5"].rewards_per_task == 5.0
    # REACT's honest overhead — Eq. 2 retries — stays well under one extra
    # execution per task
    assert by["react"].executions_per_task < 2.0
