"""Fig. 7 — average execution time per worker (final worker only).

Paper shape: REACT shortest ("the reassignment selects workers with faster
execution times"); Greedy longer; Traditional worst ("it does not react when
the user delays a task").  The paper's abstract claims up to a 45% reduction
in execution time vs. the traditional approach.
"""

from repro.experiments.endtoend import run_endtoend
from repro.experiments.reporting import report_fig7
from repro.platform.policies import greedy_policy

from _common import ENDTOEND_TIMING_CONFIG, endtoend_results


def test_fig7_greedy_endtoend(benchmark):
    """Wall-clock of one full Greedy-policy simulation."""
    result = benchmark.pedantic(
        run_endtoend,
        args=(greedy_policy(), ENDTOEND_TIMING_CONFIG),
        rounds=1,
        iterations=1,
    )
    result.metrics.check_conservation()


def test_fig7_report_and_shape(benchmark):
    results = endtoend_results()
    report = benchmark.pedantic(report_fig7, args=(results,), rounds=1, iterations=1)
    print()
    print(report)

    wt = {name: r.avg_worker_time for name, r in results.items()}
    # Traditional is the worst by a wide margin.
    assert wt["traditional"] > wt["react"]
    assert wt["traditional"] > wt["greedy"]
    # The abstract's "reduction of up to 45% on the execution time": REACT's
    # final-worker time is at most 55% of the traditional baseline's.
    assert wt["react"] <= 0.55 * wt["traditional"]
