"""Fig. 3 — matching execution time vs. number of tasks.

Paper setup: 1000 workers, full graph, tasks 1→1000; REACT/Metropolis at
1000 and 3000 cycles vs. Greedy.  Paper anchors: Greedy 99.7 s at 1000
tasks; REACT/Metropolis 12 s @1000 cycles and 45 s @3000.

This bench measures our Python matchers' wall-clock on the paper's full
1000×1000 worst case (one point per algorithm — the sweep lives in the
report printed at the end) and asserts the scaling *shape*: greedy's model
time dominates the randomized matchers at the large end exactly as in the
published figure.
"""

import numpy as np
import pytest

from repro.core.matching.greedy import GreedyMatcher
from repro.core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from repro.core.matching.react import ReactMatcher, ReactParameters
from repro.experiments.reporting import report_fig3
from repro.graph.bipartite import BipartiteGraph

from _common import matching_results

_WEIGHTS = np.random.default_rng(7).random((1000, 1000))
_GRAPH = BipartiteGraph.full(_WEIGHTS)


@pytest.mark.parametrize(
    "matcher",
    [
        ReactMatcher(ReactParameters(cycles=1000)),
        ReactMatcher(ReactParameters(cycles=3000)),
        MetropolisMatcher(MetropolisParameters(cycles=1000)),
        MetropolisMatcher(MetropolisParameters(cycles=3000)),
        GreedyMatcher(),
    ],
    ids=["react@1000", "react@3000", "metropolis@1000", "metropolis@3000", "greedy"],
)
def test_fig3_full_graph_matching_time(benchmark, matcher):
    rng = np.random.default_rng(3)
    result = benchmark(matcher.match, _GRAPH, rng)
    result.validate()


def test_fig3_report_and_shape(benchmark):
    sweep = matching_results()
    report = benchmark.pedantic(report_fig3, args=(sweep,), rounds=1, iterations=1)
    print()
    print(report)
    # Paper shape: greedy's model time grows superlinearly (O(V·E) = O(V²W))
    # and overtakes the fixed-cycle matchers as tasks increase — at this
    # sweep's 300-task endpoint it has already passed react@1000 (the full
    # 1000-task crossover against react@3000 is asserted by the calibrated
    # anchors in tests/platform/test_cost.py: 99.7 s vs 45 s).
    largest = max(p.n_tasks for p in sweep.points)
    mid = sorted({p.n_tasks for p in sweep.points})[-2]
    greedy_large = next(p for p in sweep.series("greedy") if p.n_tasks == largest)
    greedy_mid = next(p for p in sweep.series("greedy") if p.n_tasks == mid)
    react_large = next(p for p in sweep.series("react", 1000) if p.n_tasks == largest)
    react_mid = next(p for p in sweep.series("react", 1000) if p.n_tasks == mid)
    assert greedy_large.model_seconds > react_large.model_seconds
    greedy_growth = greedy_large.model_seconds / greedy_mid.model_seconds
    react_growth = react_large.model_seconds / react_mid.model_seconds
    assert greedy_growth > react_growth
