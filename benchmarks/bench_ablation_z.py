"""ABL-Z — cold-start training-length ablation (§V-C's z = 3).

z controls both how long a new worker is boosted (full edges at maximum
weight) and how many duration observations the Eq. 2/3 model needs before
activating.  z = 0 means no training phase at all; large z delays the
probabilistic protections.
"""

from repro.experiments.ablations import _small_endtoend, ablate_training_z
from repro.experiments.config import AblationConfig
from repro.experiments.endtoend import run_endtoend
from repro.experiments.reporting import report_ablation
from repro.platform.policies import react_policy


def test_ablation_z_single_run_timing(benchmark):
    result = benchmark.pedantic(
        run_endtoend,
        args=(react_policy(min_history=3), _small_endtoend(11)),
        rounds=1,
        iterations=1,
    )
    result.metrics.check_conservation()


def test_ablation_z_report(benchmark):
    result = benchmark.pedantic(
        ablate_training_z, args=(AblationConfig(),), rounds=1, iterations=1
    )
    print()
    print(report_ablation(result))

    fractions = {p.value: p.on_time_fraction for p in result.points}
    # every setting still produces a functioning system
    assert all(f > 0.3 for f in fractions.values())
    # a very long training phase (z=10) cannot beat the paper's z=3: the
    # model stays blind to dawdlers for too long
    assert fractions[3.0] >= fractions[10.0] - 0.02
