"""§V-C case study — synthetic CrowdFlower trace statistics.

Regenerates the statistics the paper extracted from its CrowdFlower
traffic-estimation job and used to parameterise the simulation:
50% of responses under 20 s, stragglers up to 6 h, 70% of workers with
trust above 0.5, and the resulting 60-120 s deadline recommendation.
"""

import numpy as np

from repro.workload.crowdflower import analyze_case_study, generate_case_study


def test_case_study_generation_timing(benchmark):
    rng = np.random.default_rng(13)
    trace = benchmark(generate_case_study, rng, 5000, 500)
    assert len(trace) == 5000


def test_case_study_report_and_anchors(benchmark):
    rng = np.random.default_rng(13)
    trace = generate_case_study(rng, n_responses=20_000, n_workers=1500)
    report = benchmark.pedantic(analyze_case_study, args=(trace,), rounds=1, iterations=1)
    print()
    print("# §V-C case study (synthetic trace vs. paper anchors)")
    print(f"median response:      {report.median_response_seconds:.1f} s  (paper ~20 s)")
    print(f"fraction < 20 s:      {report.fraction_under_20s:.1%}  (paper 50%)")
    print(f"max response:         {report.max_response_seconds/3600:.2f} h  (paper: up to 6 h)")
    print(f"trust > 0.5:          {report.fraction_trust_above_half:.1%}  (paper 70%)")
    print(f"deadline range:       {report.recommended_deadline_range}  (paper 60-120 s)")

    assert abs(report.fraction_under_20s - 0.5) < 0.03
    assert abs(report.fraction_trust_above_half - 0.7) < 0.04
    assert report.max_response_seconds > 3600.0
    assert report.recommended_deadline_range == (60.0, 120.0)
